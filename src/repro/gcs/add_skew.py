"""The Add Skew lemma (Lemma 6.1), executable.

Given an execution ``alpha`` whose final window ``[S, T]`` is *quiet*
(all hardware rates 1, all delays exactly ``d/2``), the lemma constructs
an indistinguishable execution ``beta`` of duration
``T' = S + (tau / gamma)(j - i)`` in which the clock skew between two
chosen nodes ``i < j`` grew by at least ``(j - i) / 12``:

* node ``k``'s hardware clock runs at rate ``gamma`` from its knee time
  ``T_k`` to ``T'`` (Figure 1 of the paper)::

      T_k = S                          for k <= i       (sped up longest)
            S + (tau/gamma)(k - i)     for i < k < j    (staggered ramp)
            T'                         for k >= j       (never sped up)

* every action is retimed through the warp
  ``psi_k = identity until T_k, slope 1/gamma after`` — which is exactly
  what re-running the deterministic simulator under the new rate
  schedules and the :class:`~repro.gcs.oracle.WarpedDelayOracle`
  produces.

The construction is direction-symmetric: ``lead='lo'`` speeds up the
low-index side (raising ``L_i - L_j``, the paper's orientation after its
WLOG renumbering), ``lead='hi'`` mirrors it.

This module builds the plan, applies it to an
:class:`~repro.gcs.schedule.AdversarySchedule`, and verifies the lemma's
claims (6.2-6.5) numerically on actual executions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._constants import ADD_SKEW_GAIN, TIME_EPS, gamma as gamma_of, tau as tau_of
from repro.errors import ConstructionError
from repro.gcs.oracle import WarpedDelayOracle
from repro.gcs.schedule import AdversarySchedule
from repro.gcs.warps import TimeWarp
from repro.sim.execution import Execution

__all__ = ["AddSkewPlan", "apply_add_skew", "verify_add_skew_claims"]


@dataclass(frozen=True)
class AddSkewPlan:
    """One application of the Add Skew lemma on a line of ``n`` nodes.

    Parameters
    ----------
    i, j:
        The target pair, ``0 <= i < j < n`` (indices on the line; their
        distance is ``j - i``).
    n:
        Number of nodes (the line network ``d_kl = |k - l|``).
    alpha_duration:
        ``T``, the duration of the execution being transformed.
    rho:
        Drift bound; fixes ``tau = 1/rho`` and ``gamma = 1 + rho/(4+rho)``.
    lead:
        ``'lo'`` to grow ``L_i - L_j`` (speed up low indices),
        ``'hi'`` to grow ``L_j - L_i``.
    """

    i: int
    j: int
    n: int
    alpha_duration: float
    rho: float
    lead: str = "lo"

    def __post_init__(self) -> None:
        if not 0 <= self.i < self.j < self.n:
            raise ConstructionError(
                f"need 0 <= i < j < n, got i={self.i}, j={self.j}, n={self.n}"
            )
        if self.lead not in ("lo", "hi"):
            raise ConstructionError(f"lead must be 'lo' or 'hi', got {self.lead!r}")
        if self.window_start < -TIME_EPS:
            raise ConstructionError(
                f"alpha (duration {self.alpha_duration}) is shorter than the "
                f"required quiet window tau*(j-i) = {self.tau * self.span}"
            )

    # ------------------------------------------------------------------
    # the lemma's quantities

    @property
    def span(self) -> int:
        """``j - i``: the pair distance, and the skew gain is span/12."""
        return self.j - self.i

    @property
    def tau(self) -> float:
        return tau_of(self.rho)

    @property
    def gamma(self) -> float:
        return gamma_of(self.rho)

    @property
    def window_start(self) -> float:
        """``S = T - tau (j - i)``."""
        return self.alpha_duration - self.tau * self.span

    @property
    def window_end(self) -> float:
        """``T`` (alpha's duration)."""
        return self.alpha_duration

    @property
    def beta_end(self) -> float:
        """``T' = S + (tau / gamma)(j - i)``."""
        return self.window_start + (self.tau / self.gamma) * self.span

    @property
    def guaranteed_gain(self) -> float:
        """Claim 6.5's skew gain: ``(j - i)/12``."""
        return ADD_SKEW_GAIN * self.span

    @property
    def leader(self) -> int:
        """The node whose clock the construction pushes ahead."""
        return self.i if self.lead == "lo" else self.j

    @property
    def laggard(self) -> int:
        return self.j if self.lead == "lo" else self.i

    def signed_skew(self, execution: Execution, t: float) -> float:
        """``L_leader(t) - L_laggard(t)`` — the quantity the lemma grows."""
        return execution.skew(self.leader, self.laggard, t)

    # ------------------------------------------------------------------
    # Figure 1: per-node knee times and warps

    def knee_time(self, k: int) -> float:
        """``T_k``: when node ``k``'s hardware switches to rate gamma."""
        if not 0 <= k < self.n:
            raise ConstructionError(f"node {k} outside [0, {self.n})")
        if self.lead == "lo":
            ramp = k - self.i
        else:
            ramp = self.j - k
        if ramp <= 0:
            return self.window_start
        if ramp >= self.span:
            return self.beta_end
        return self.window_start + (self.tau / self.gamma) * ramp

    def gamma_windows(self) -> dict[int, tuple[float, float]]:
        """Per node, the real-time window run at rate gamma (Figure 1).

        Nodes on the slow side get an empty window (``T_k == T'``).
        """
        return {
            k: (self.knee_time(k), self.beta_end) for k in range(self.n)
        }

    def warp(self, k: int) -> TimeWarp:
        """``psi_k``: alpha-time to beta-time for node ``k``."""
        return TimeWarp.knee(
            self.knee_time(k), self.window_end, 1.0 / self.gamma
        )

    def warps(self) -> dict[int, TimeWarp]:
        return {k: self.warp(k) for k in range(self.n)}

    @property
    def straggler_horizon(self) -> float:
        """Latest beta-time at which a retimed in-flight message can land.

        Alpha receives at or before ``T`` map through the slowest warp to
        at most ``T' + (T - T')/gamma``; extensions must pad past this so
        the next round's window is quiet (see module doc of
        :mod:`repro.gcs.oracle`).
        """
        return self.beta_end + (self.window_end - self.beta_end) / self.gamma


def apply_add_skew(
    schedule: AdversarySchedule, plan: AddSkewPlan
) -> AdversarySchedule:
    """Transform ``alpha``'s schedule into ``beta``'s (Lemma 6.1).

    The returned schedule has duration ``T'``; running it reproduces the
    retimed execution.  Raises :class:`ConstructionError` if the
    schedule's window is not quiet (the lemma's precondition 2; the delay
    precondition 1 is the caller's responsibility and is checked
    empirically by :func:`verify_add_skew_claims`).
    """
    if abs(schedule.duration - plan.alpha_duration) > 1e-6:
        raise ConstructionError(
            f"plan was built for duration {plan.alpha_duration}, "
            f"schedule has {schedule.duration}"
        )
    if not schedule.rates_constant_one(plan.window_start, plan.window_end):
        raise ConstructionError(
            "Add Skew precondition: all hardware rates must be 1 during "
            f"[{plan.window_start}, {plan.window_end}]"
        )
    new_rates = {}
    for node, old in schedule.rates.items():
        knee = plan.knee_time(node)
        if knee < plan.beta_end - TIME_EPS:
            new_rates[node] = old.with_rate(knee, plan.beta_end, plan.gamma)
        else:
            new_rates[node] = old
    oracle = WarpedDelayOracle(
        base=schedule.delay_oracle,
        warps=plan.warps(),
        window_start=plan.window_start,
        window_end=plan.window_end,
        beta_end=plan.beta_end,
    )
    return AdversarySchedule(
        rates=new_rates, delay_oracle=oracle, duration=plan.beta_end
    )


def verify_add_skew_claims(
    alpha: Execution,
    beta: Execution,
    plan: AddSkewPlan,
    *,
    tol: float = 1e-6,
) -> dict[str, float]:
    """Numerically verify Lemma 6.1's claims on two actual executions.

    Checks (raising :class:`ConstructionError` on failure):

    * **Claim 6.3** — beta's hardware rates within ``[1 - rho, 1 + rho]``
      (and within ``[1, gamma]`` in the window);
    * **Claim 6.4** — messages received in beta during ``(S, T']`` have
      delays in ``[d/4, 3d/4]``; the prefix ``[0, S]`` delays match alpha;
    * **Claim 6.5** — the skew gain is at least ``(j - i)/12``.

    (Claim 6.2, indistinguishability, is checked separately by
    :func:`repro.gcs.indistinguishability.assert_indistinguishable_prefix`.)

    Returns a summary dict with the measured quantities.
    """
    s, t_end, t_beta = plan.window_start, plan.window_end, plan.beta_end

    # Claim 6.3: rate bounds.
    beta.check_drift_bounds()
    if not beta.rates_within(1.0, plan.gamma, t_from=s, t_until=t_beta):
        raise ConstructionError("beta window rates must lie in [1, gamma]")

    # Claim 6.4: delay bounds in the window...
    if not beta.delays_within(0.25, 0.75, received_from=s, received_until=t_beta):
        raise ConstructionError(
            "beta delays in (S, T'] must lie within [d/4, 3d/4]"
        )
    # ... and untouched delays before the window.
    alpha_prefix = {
        m.seq: m.delay for m in alpha.messages if m.receive_time <= s + TIME_EPS
    }
    for m in beta.messages:
        if m.receive_time <= s + TIME_EPS:
            if m.seq not in alpha_prefix or abs(alpha_prefix[m.seq] - m.delay) > tol:
                raise ConstructionError(
                    f"prefix message {m.seq} delay changed between alpha and beta"
                )

    # Claim 6.5: skew gain.
    skew_alpha = plan.signed_skew(alpha, t_end)
    skew_beta = plan.signed_skew(beta, t_beta)
    gain = skew_beta - skew_alpha
    if gain < plan.guaranteed_gain - tol:
        raise ConstructionError(
            f"Add Skew gained only {gain}, lemma guarantees "
            f"{plan.guaranteed_gain}"
        )
    return {
        "skew_alpha": skew_alpha,
        "skew_beta": skew_beta,
        "gain": gain,
        "guaranteed_gain": plan.guaranteed_gain,
        "window_shrink": t_end - t_beta,
    }
