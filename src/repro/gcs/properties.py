"""The paper's definitions as checkable properties (Sections 3-4).

* Assumption 1 — bounded drift (checked by construction and re-checked
  on executions);
* Requirement 1 — validity: every logical clock gains at least ``r/2``
  over every interval of length ``r``;
* Requirement 2 — the f-gradient property: ``|L_i(t) - L_j(t)| <=
  f(d_ij)`` for all pairs at all times.

``f`` is any nondecreasing function; :class:`GradientBound` wraps common
shapes (linear ``a*d + b``, the conjectured ``O(d + log D)``, a constant)
and :func:`check_gradient` evaluates Requirement 2 on an execution.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterable

import numpy as np

from repro.analysis.field import SkewField
from repro.sim.execution import Execution

__all__ = [
    "GradientBound",
    "GradientViolation",
    "check_validity",
    "check_gradient",
    "empirical_f",
]


@dataclass(frozen=True)
class GradientBound:
    """A nondecreasing ``f`` for the f-GCS property, with a label."""

    fn: Callable[[float], float]
    label: str

    def __call__(self, d: float) -> float:
        return self.fn(d)

    @classmethod
    def linear(cls, slope: float, intercept: float = 0.0) -> "GradientBound":
        """``f(d) = slope * d + intercept``."""
        return cls(lambda d: slope * d + intercept, f"{slope}*d+{intercept}")

    @classmethod
    def conjectured(cls, diameter: float, slope: float = 1.0) -> "GradientBound":
        """Section 9's conjecture shape: ``f(d) = slope * (d + log D)``."""
        log_d = math.log(max(diameter, 1.0))
        return cls(
            lambda d: slope * (d + log_d), f"{slope}*(d+log {diameter:g})"
        )

    @classmethod
    def constant(cls, value: float) -> "GradientBound":
        """A distance-independent cap (what TDMA-style applications want)."""
        return cls(lambda d: value, f"const {value}")


@dataclass(frozen=True)
class GradientViolation:
    """A witnessed violation of Requirement 2."""

    i: int
    j: int
    time: float
    skew: float
    distance: float
    bound: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"|L_{self.i} - L_{self.j}| = {self.skew:.4f} at t={self.time:.3f} "
            f"exceeds f({self.distance:g}) = {self.bound:.4f}"
        )


def check_validity(execution: Execution, *, rate: float = 0.5, step: float = 0.5) -> None:
    """Requirement 1 over the whole execution; raises on violation."""
    execution.check_validity(rate=rate, step=step)


def check_gradient(
    execution: Execution,
    bound: GradientBound,
    *,
    times: Iterable[float] | None = None,
) -> list[GradientViolation]:
    """Evaluate Requirement 2; return all violations found (empty = holds).

    Sampled at ``times`` (default: unit grid).  Sampling is sound for our
    algorithms between events because skew is piecewise linear in time;
    the unit grid plus event density makes misses negligible, and the
    experiments only ever claim *violations* (which are witnessed
    exactly), never certifications.

    Evaluated from one batched :class:`~repro.analysis.field.SkewField`
    (one pair-series comparison per pair instead of a ``value_at`` per
    (pair, time)); violations are returned in the scalar path's
    time-major order.

    On dynamic-topology executions the bound is evaluated against the
    **time-varying** pairwise distance: each sample time is charged
    ``f(d_ij(t))`` for the network live at ``t``
    (:meth:`SkewField.topology_segments`), so a pair that drifts apart
    is allowed proportionally more skew from the moment it is farther —
    exactly the gradient property's reading of mobility.  Witnessed
    violations carry the distance and limit that were in force at their
    instant.
    """
    times = list(times) if times is not None else execution.sample_times()
    field = SkewField(execution, times)
    segments = field.topology_segments()
    hits: list[tuple[int, int, GradientViolation]] = []
    for rank, (i, j) in enumerate(execution.topology.pairs()):
        series = field.pair_series(i, j)
        for topology, cols in segments:
            d = topology.distance(i, j)
            limit = bound(d)
            block = series if cols.size == series.size else series[cols]
            for offset in np.nonzero(block > limit + 1e-9)[0]:
                k = int(cols[offset])
                hits.append(
                    (
                        k,
                        rank,
                        GradientViolation(
                            i, j, float(times[k]), float(series[k]), d, limit
                        ),
                    )
                )
    hits.sort(key=lambda h: (h[0], h[1]))
    return [violation for _, _, violation in hits]


def empirical_f(
    executions: Iterable[Execution],
    *,
    times_step: float = 1.0,
) -> dict[float, float]:
    """The pointwise-max gradient profile over several executions.

    This is the tightest nondecreasing-in-observation ``f`` the runs
    certify: ``f_hat(d) = max over executions/times/pairs at distance d``.
    """
    profile: dict[float, float] = {}
    for execution in executions:
        for d, skew in execution.gradient_profile(
            execution.sample_times(times_step)
        ).items():
            if skew > profile.get(d, float("-inf")):
                profile[d] = skew
    # Enforce monotonicity (f must be nondecreasing): cumulative max.
    out: dict[float, float] = {}
    running = 0.0
    for d in sorted(profile):
        running = max(running, profile[d])
        out[d] = running
    return out
