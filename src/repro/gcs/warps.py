"""Monotone piecewise-linear time warps.

The Add Skew lemma (Lemma 6.1) defines the retimed execution ``beta`` by
mapping each action's real time through a node-specific function::

    T_beta(pi) = T_alpha(pi)                                if T_alpha(pi) <= T_k
                 T_k + (T_alpha(pi) - T_k) / gamma          otherwise

That map — identity up to a knee, slope ``1/gamma`` after — is a
:class:`TimeWarp`.  Warps are strictly increasing, hence invertible;
the warped delay oracle (:mod:`repro.gcs.oracle`) uses both directions.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass

from repro._constants import TIME_EPS
from repro.errors import ScheduleError

__all__ = ["TimeWarp"]


@dataclass(frozen=True)
class TimeWarp:
    """A strictly increasing piecewise-linear map of real time.

    Defined by knots ``(xs[k], ys[k])``; between knots the map is linear,
    beyond the last knot it continues with the final segment's slope.
    ``xs[0]`` must be 0 and map to 0 (executions start together).
    """

    xs: tuple[float, ...]
    ys: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.xs) != len(self.ys) or len(self.xs) < 2:
            raise ScheduleError("warp needs matching xs/ys with >= 2 knots")
        if abs(self.xs[0]) > TIME_EPS or abs(self.ys[0]) > TIME_EPS:
            raise ScheduleError("warp must fix the origin")
        for a, b in zip(self.xs, self.xs[1:]):
            if b <= a + TIME_EPS:
                raise ScheduleError("warp knots must strictly increase in x")
        for a, b in zip(self.ys, self.ys[1:]):
            if b <= a + TIME_EPS:
                raise ScheduleError("warp must be strictly increasing in y")

    # ------------------------------------------------------------------
    # constructors

    @classmethod
    def identity(cls, span: float = 1.0) -> "TimeWarp":
        return cls((0.0, span), (0.0, span))

    @classmethod
    def knee(cls, knee_x: float, end_x: float, slope_after: float) -> "TimeWarp":
        """Identity up to ``knee_x``, then slope ``slope_after`` to ``end_x``.

        This is exactly the Lemma 6.1 shape with
        ``slope_after = 1 / gamma``.  ``knee_x = 0`` gives a pure-slope
        warp (used for nodes whose whole window is sped up).
        """
        if slope_after <= 0:
            raise ScheduleError("slope must be positive")
        if knee_x < 0 or end_x <= knee_x:
            raise ScheduleError(f"need 0 <= knee {knee_x} < end {end_x}")
        if knee_x <= TIME_EPS:
            # A knee at (or indistinguishably near) the origin is a pure
            # slope warp.
            return cls((0.0, end_x), (0.0, end_x * slope_after))
        knee_y = knee_x
        end_y = knee_y + (end_x - knee_x) * slope_after
        return cls((0.0, knee_x, end_x), (0.0, knee_y, end_y))

    # ------------------------------------------------------------------
    # evaluation

    def __call__(self, t: float) -> float:
        """Map original time ``t`` to warped time."""
        if t < 0:
            raise ScheduleError(f"warps are defined for t >= 0, got {t}")
        k = min(bisect_right(self.xs, t) - 1, len(self.xs) - 2)
        if k < 0:
            k = 0
        slope = (self.ys[k + 1] - self.ys[k]) / (self.xs[k + 1] - self.xs[k])
        return self.ys[k] + (t - self.xs[k]) * slope

    def inverse(self, y: float) -> float:
        """Map warped time back to original time."""
        if y < 0:
            raise ScheduleError(f"warps are defined for y >= 0, got {y}")
        k = min(bisect_right(self.ys, y) - 1, len(self.ys) - 2)
        if k < 0:
            k = 0
        slope = (self.ys[k + 1] - self.ys[k]) / (self.xs[k + 1] - self.xs[k])
        return self.xs[k] + (y - self.ys[k]) / slope

    # ------------------------------------------------------------------
    # properties

    @property
    def domain_end(self) -> float:
        return self.xs[-1]

    @property
    def range_end(self) -> float:
        return self.ys[-1]

    def is_identity_until(self, x: float) -> bool:
        """Whether the warp is the identity on ``[0, x]``."""
        return abs(self(x) - x) <= 1e-9 and all(
            abs(self(p) - p) <= 1e-9 for p in self.xs if p <= x
        )

    def slope_at(self, t: float) -> float:
        k = min(bisect_right(self.xs, t) - 1, len(self.xs) - 2)
        if k < 0:
            k = 0
        return (self.ys[k + 1] - self.ys[k]) / (self.xs[k + 1] - self.xs[k])
