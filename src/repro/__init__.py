"""repro — reproduction of "Gradient Clock Synchronization"
(Rui Fan & Nancy Lynch, PODC 2004).

The package provides:

* :mod:`repro.sim` — an executable form of the paper's model: drifting
  hardware clocks, adversarial message delays in ``[0, d_ij]``,
  deterministic discrete-event simulation with full traces;
* :mod:`repro.topology` — networks described by delay-uncertainty
  distances;
* :mod:`repro.algorithms` — the clock synchronization algorithms the
  paper discusses (max-based/Srikanth-Toueg, RBS, external sync) plus a
  gradient candidate of the kind Section 9 conjectures;
* :mod:`repro.gcs` — the paper's contribution: the gradient property,
  the Add Skew and Bounded Increase lemmas, and Theorem 8.1's iterated
  adversary, all executable and verified;
* :mod:`repro.apps` — the motivating applications (TDMA, data fusion,
  target tracking);
* :mod:`repro.experiments` — runnable reproductions E01-E14 of every
  evaluation artifact in the paper (plus extensions beyond it, like the
  E13 fault-robustness sweep and the E14 sim-vs-live comparison);
* :mod:`repro.sweep` — the parallel scenario-sweep engine, including
  the fault & churn axis built on :class:`repro.sim.FaultPlan`;
* :mod:`repro.rt` — the live runtime: the same unchanged algorithm
  processes on real transports (deterministic virtual time, wall-clock
  asyncio, one-process-per-node UDP), recorded as real ``Execution``
  objects.

Quickstart::

    from repro import LowerBoundAdversary, MaxBasedAlgorithm

    result = LowerBoundAdversary(diameter=32).run(MaxBasedAlgorithm())
    print(result.peak_adjacent_skew)   # Omega(log D / log log D), forced
"""

from repro._constants import (
    DEFAULT_RHO,
    gamma,
    lower_bound_curve,
    tau,
)
from repro.algorithms import (
    AveragingAlgorithm,
    BoundedCatchUpAlgorithm,
    ExternalSyncAlgorithm,
    MaxBasedAlgorithm,
    NullAlgorithm,
    RBSAlgorithm,
    SrikanthTouegAlgorithm,
    SyncAlgorithm,
    standard_suite,
)
from repro.errors import ReproError
from repro.gcs import (
    AddSkewPlan,
    AdversarySchedule,
    GradientBound,
    LowerBoundAdversary,
    apply_add_skew,
    force_distance_skew,
    measure_bounded_increase,
)
from repro.sim import (
    Execution,
    FaultPlan,
    HalfDistanceDelay,
    PiecewiseConstantRate,
    Process,
    SimConfig,
    Simulator,
    UniformRandomDelay,
    run_simulation,
)
from repro.topology import (
    Topology,
    balanced_tree,
    broadcast_cluster,
    complete,
    grid,
    line,
    random_geometric,
    ring,
)

__version__ = "1.7.0"

__all__ = [
    "__version__",
    "DEFAULT_RHO",
    "gamma",
    "tau",
    "lower_bound_curve",
    "ReproError",
    # algorithms
    "SyncAlgorithm",
    "MaxBasedAlgorithm",
    "SrikanthTouegAlgorithm",
    "AveragingAlgorithm",
    "BoundedCatchUpAlgorithm",
    "RBSAlgorithm",
    "ExternalSyncAlgorithm",
    "NullAlgorithm",
    "standard_suite",
    # gcs
    "AddSkewPlan",
    "AdversarySchedule",
    "GradientBound",
    "LowerBoundAdversary",
    "apply_add_skew",
    "force_distance_skew",
    "measure_bounded_increase",
    # sim
    "Execution",
    "FaultPlan",
    "HalfDistanceDelay",
    "UniformRandomDelay",
    "PiecewiseConstantRate",
    "Process",
    "SimConfig",
    "Simulator",
    "run_simulation",
    # topology
    "Topology",
    "line",
    "ring",
    "grid",
    "complete",
    "balanced_tree",
    "random_geometric",
    "broadcast_cluster",
]
