"""Simulation substrate: clocks, events, messages, the simulator, traces.

This subpackage is the executable form of the paper's model (Section 3):
timed-automaton-style nodes with drifting hardware clocks, exchanging
messages whose delays the adversary picks from ``[0, d_ij]``.
"""

from repro.sim.clock import HardwareClock, LogicalClock
from repro.sim.events import BatchEventQueue, EventQueue
from repro.sim.execution import Execution
from repro.sim.faults import (
    CrashWindow,
    CrashingProcess,
    DroppingDelayPolicy,
    FaultPlan,
    LinkFault,
)
from repro.sim.messages import (
    FixedFractionDelay,
    HalfDistanceDelay,
    JitterDelay,
    Message,
    PerPairDelay,
    SequenceDelay,
    UniformRandomDelay,
)
from repro.sim.node import NodeAPI, Process
from repro.sim.rates import PiecewiseConstantRate, constant_schedules
from repro.sim.simulator import SimConfig, Simulator, run_simulation
from repro.sim.trace import ColumnarTrace, ExecutionTrace, TraceEvent

__all__ = [
    "HardwareClock",
    "LogicalClock",
    "EventQueue",
    "BatchEventQueue",
    "Execution",
    "FaultPlan",
    "CrashWindow",
    "LinkFault",
    "CrashingProcess",
    "DroppingDelayPolicy",
    "Message",
    "HalfDistanceDelay",
    "FixedFractionDelay",
    "UniformRandomDelay",
    "PerPairDelay",
    "JitterDelay",
    "SequenceDelay",
    "NodeAPI",
    "Process",
    "PiecewiseConstantRate",
    "constant_schedules",
    "SimConfig",
    "Simulator",
    "run_simulation",
    "ExecutionTrace",
    "ColumnarTrace",
    "TraceEvent",
]
