"""Hardware and logical clocks (Section 3 of the paper).

A *hardware clock* is the integral of a bounded-drift rate function
(Assumption 1: rates in ``[1 - rho, 1 + rho]``).  A *logical clock* is
computed by the node from its hardware clock and the messages it receives.

Algorithms in this package realize logical clocks in the standard two
ways, both satisfying the paper's validity requirement (Requirement 1:
rate at least 1/2) by construction:

* **forward jumps** — ``L`` advances at the hardware rate and takes
  discrete jumps, never backward (max-based, Srikanth–Toueg, ...);
* **rate modulation** — ``L`` advances at ``m(t) * h(t)`` for a
  multiplier ``m(t) >= 1`` chosen by the algorithm (the blocking
  gradient candidate runs "fast mode" this way, exactly like the
  GCS algorithms in the follow-on literature).

With ``rho <= 1/2`` the logical rate is always at least
``1 - rho >= 1/2`` and jumps only move forward, so Requirement 1 holds.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro._constants import TIME_EPS, window_starts
from repro.errors import DriftBoundError, ValidityError
from repro.sim.rates import PiecewiseConstantRate

__all__ = ["HardwareClock", "LogicalClock"]


@dataclass(frozen=True)
class HardwareClock:
    """A drifting hardware clock: a validated rate schedule.

    Parameters
    ----------
    schedule:
        The piecewise-constant rate function ``h(t)``.
    rho:
        The drift bound; construction fails unless every rate lies in
        ``[1 - rho, 1 + rho]`` (Assumption 1).
    """

    schedule: PiecewiseConstantRate
    rho: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.rho < 1.0:
            raise DriftBoundError(f"rho must lie in [0, 1), got {self.rho}")
        lo, hi = 1.0 - self.rho, 1.0 + self.rho
        if not self.schedule.within_bounds(lo - TIME_EPS, hi + TIME_EPS):
            raise DriftBoundError(
                f"hardware rates must lie in [{lo}, {hi}]; "
                f"schedule has range [{self.schedule.min_rate()}, "
                f"{self.schedule.max_rate()}]"
            )

    def value_at(self, t: float) -> float:
        """``H(t)``, the clock reading at real time ``t``."""
        return self.schedule.value_at(t)

    def values_at(self, times: Sequence[float] | np.ndarray) -> np.ndarray:
        """``H(t)`` for a whole array of times (one vectorized lookup)."""
        return self.schedule.values_at(times)

    def time_at(self, value: float) -> float:
        """The real time at which the clock reads ``value``."""
        return self.schedule.invert(value)

    def rate_at(self, t: float) -> float:
        """``h(t)``, the instantaneous rate."""
        return self.schedule.rate_at(t)


class LogicalClock:
    """A logical clock ``L`` built from a hardware clock.

    Between control actions, ``L`` advances at ``multiplier * h(t)``.
    Control actions are *forward jumps* and *multiplier changes*
    (multiplier always ``>= 1``).  Every action closes a segment, so
    ``value_at`` reconstructs ``L`` at any past real time — that
    reconstruction is what all skew measurements and gradient-property
    checks read.

    Backward jumps and multipliers below 1 raise :class:`ValidityError`
    (they could violate Requirement 1).
    """

    #: Sanity cap on multipliers; algorithms wanting faster catch-up
    #: should jump instead.
    MAX_MULTIPLIER = 8.0

    def __init__(self, hardware: HardwareClock, initial_value: float = 0.0):
        self.hardware = hardware
        # Segment k: from real time _times[k], L = _values[k] +
        # _mults[k] * (H(t) - H(_times[k])).
        self._times: list[float] = [0.0]
        self._values: list[float] = [float(initial_value)]
        self._mults: list[float] = [1.0]
        self._total_jump = 0.0

    # ------------------------------------------------------------------
    # runtime interface (used by algorithms during simulation)

    @property
    def multiplier(self) -> float:
        """The current rate multiplier."""
        return self._mults[-1]

    def read(self, t: float) -> float:
        """The current logical value at real time ``t``."""
        return self._segment_value(len(self._times) - 1, t)

    def _segment_value(self, k: int, t: float) -> float:
        h_now = self.hardware.value_at(t)
        h_seg = self.hardware.value_at(self._times[k])
        return self._values[k] + self._mults[k] * (h_now - h_seg)

    def _append_segment(self, t: float, value: float, mult: float) -> None:
        if t < self._times[-1] - TIME_EPS:
            raise ValidityError(
                f"clock action at t={t} precedes previous action at "
                f"{self._times[-1]}"
            )
        if abs(t - self._times[-1]) <= TIME_EPS:
            # Same-instant actions collapse into one segment.
            self._values[-1] = value
            self._mults[-1] = mult
            self._times[-1] = min(self._times[-1], t)
        else:
            self._times.append(t)
            self._values.append(value)
            self._mults.append(mult)

    def jump_to(self, t: float, target: float) -> float:
        """Jump the logical clock forward to ``target`` at real time ``t``.

        Returns the jump size.  A target at or below the current value is
        a no-op (``max(own, received)`` semantics).
        """
        current = self.read(t)
        if target <= current + TIME_EPS:
            return 0.0
        return self.jump_by(t, target - current)

    def jump_by(self, t: float, amount: float) -> float:
        """Jump the logical clock forward by ``amount >= 0`` at time ``t``."""
        if amount < -TIME_EPS:
            raise ValidityError(
                f"backward jump of {amount} at t={t} violates Requirement 1"
            )
        if amount <= 0.0:
            return 0.0
        value = self.read(t) + amount
        self._append_segment(t, value, self._mults[-1])
        self._total_jump += amount
        return amount

    def min_multiplier(self) -> float:
        """The smallest multiplier that cannot violate Requirement 1.

        The logical rate is ``m * h(t) >= m * (1 - rho)``; Requirement 1
        demands at least ``1/2``, so ``m >= 1 / (2 (1 - rho))`` is always
        safe.  (For ``rho = 0`` that is ``1/2``; for ``rho = 1/2`` it is
        ``1`` — slowing down costs exactly the drift headroom.)
        """
        return 1.0 / (2.0 * (1.0 - self.hardware.rho))

    def set_multiplier(self, t: float, multiplier: float) -> None:
        """Change the logical rate to ``multiplier * h(t)`` from ``t`` on.

        ``multiplier`` must lie in ``[min_multiplier(), MAX_MULTIPLIER]``;
        smaller values could break validity under adversarial hardware
        rates.
        """
        if multiplier < self.min_multiplier() - TIME_EPS:
            raise ValidityError(
                f"multiplier {multiplier} below the validity-safe floor "
                f"{self.min_multiplier()} (Requirement 1)"
            )
        if multiplier > self.MAX_MULTIPLIER:
            raise ValidityError(
                f"multiplier {multiplier} exceeds sanity cap "
                f"{self.MAX_MULTIPLIER}"
            )
        if abs(multiplier - self._mults[-1]) <= TIME_EPS:
            return
        self._append_segment(t, self.read(t), multiplier)

    # ------------------------------------------------------------------
    # post-hoc interface (used by analysis after the run)

    def value_at(self, t: float) -> float:
        """``L(t)`` reconstructed at any past real time."""
        k = bisect_right(self._times, t) - 1
        if k < 0:
            k = 0
        return self._segment_value(k, t)

    def values_at(self, times: Sequence[float] | np.ndarray) -> np.ndarray:
        """``L(t)`` for a whole array of times at once.

        The batched analogue of :meth:`value_at`: one ``searchsorted``
        locates every sample's segment, then all segment evaluations run
        as array arithmetic.  The per-element operations are exactly
        :meth:`_segment_value`'s, so scalar and batched reconstructions
        agree bitwise — the equivalence the analysis layer's tests pin.
        """
        t = np.asarray(times, dtype=float)
        seg_starts = np.asarray(self._times, dtype=float)
        k = np.searchsorted(seg_starts, t, side="right") - 1
        k = np.maximum(k, 0)
        h_now = self.hardware.values_at(t)
        h_seg = self.hardware.values_at(seg_starts)
        values = np.asarray(self._values, dtype=float)
        mults = np.asarray(self._mults, dtype=float)
        return values[k] + mults[k] * (h_now - h_seg[k])

    def segments(self) -> list[tuple[float, float, float]]:
        """All recorded ``(real_time, value, multiplier)`` control points."""
        return list(zip(self._times, self._values, self._mults))

    def time_at(self, value: float) -> float:
        """The earliest real time at which ``L(t) >= value``.

        ``L`` is strictly increasing between control points and jumps
        forward at them, so the preimage of a value skipped by a jump is
        the jump instant.  Used by applications (e.g. TDMA) that need to
        know *when on the wall clock* a node's logical clock crossed a
        boundary.
        """
        k = bisect_right(self._values, value) - 1
        if k < 0:
            return 0.0
        t_seg, v_seg, mult = self._times[k], self._values[k], self._mults[k]
        h_target = self.hardware.value_at(t_seg) + (value - v_seg) / mult
        t = self.hardware.time_at(h_target)
        # value >= v_seg = L(t_seg), so the preimage cannot precede the
        # segment start; float error in the inversion could land just
        # below it, which would drop the segment's opening jump.
        t = max(t, t_seg)
        if k + 1 < len(self._times) and t > self._times[k + 1]:
            # The value falls inside a forward jump: crossed at the jump.
            return self._times[k + 1]
        return t

    def total_jump(self) -> float:
        """Sum of all forward jumps taken."""
        return self._total_jump

    def max_multiplier_used(self) -> float:
        return max(self._mults)

    def check_validity(
        self, horizon: float, *, rate: float = 0.5, step: float = 0.25
    ) -> None:
        """Assert Requirement 1: ``L(t + r) - L(t) >= rate * r`` on ``[0, horizon]``.

        With forward-only jumps, multipliers >= 1, and hardware rate
        ``>= 1 - rho``, this can fail only for out-of-model inputs; the
        check exists so experiments *demonstrate* compliance rather than
        assume it.

        Windows walk an integer-index grid (not a ``t += step``
        accumulator, which drifts and can skip the final window) and are
        evaluated in one batched pass per clock.
        """
        starts = window_starts(horizon, window=step, step=step)
        if starts.size == 0:
            return
        gains = self.values_at(starts + step) - self.values_at(starts)
        bad = np.nonzero(gains < rate * step - 1e-6)[0]
        if bad.size:
            t = float(starts[bad[0]])
            raise ValidityError(
                f"logical clock gained {float(gains[bad[0]])} over "
                f"[{t}, {t + step}]; requirement is {rate * step}"
            )
