"""The discrete-event simulator: an executable form of the paper's model.

A :class:`Simulator` runs a set of :class:`~repro.sim.node.Process`
behaviors on a :class:`~repro.topology.base.Topology` under an adversary
schedule (per-node hardware rate schedules + a delay policy) for a fixed
real-time duration.

Determinism contract
--------------------
Given identical (topology, processes, schedules, delay policy, fault
plan, seed, duration), two runs produce identical traces.  Consequently,
re-running under a *warped* schedule reproduces exactly the retimed
execution that the paper's indistinguishability arguments construct on
paper — this is the mechanism behind :mod:`repro.gcs.add_skew` and
:mod:`repro.gcs.lower_bound`.  An empty (or absent) fault plan builds no
fault machinery at all, so fault-free runs stay byte-identical to what
the simulator produced before faults existed; likewise a
:class:`~repro.topology.dynamic.DynamicTopology` with no change-points
schedules nothing and stays byte-identical to the plain static run.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Mapping, Optional

from repro._constants import DEFAULT_RHO, TIME_EPS
from repro.errors import SimulationError
from repro.sim.clock import HardwareClock, LogicalClock
from repro.sim.events import (
    CrashNode,
    DeliverMessage,
    EventQueue,
    FireTimer,
    RecoverNode,
    TopologyChange,
)
from repro.sim.execution import Execution
from repro.sim.faults import CrashingProcess, FaultController, FaultPlan
from repro.sim.messages import (
    DelayPolicy,
    HalfDistanceDelay,
    Message,
    validate_delay,
)
from repro.sim.node import NodeAPI, Process
from repro.sim.rates import PiecewiseConstantRate
from repro.sim.trace import (
    CRASH,
    ExecutionTrace,
    RECEIVE,
    RECOVER,
    SEND,
    START,
    TIMER,
    TOPOLOGY,
    TraceEvent,
)
from repro.topology.base import Topology
from repro.topology.dynamic import DynamicTopology

__all__ = ["SimConfig", "Simulator", "run_simulation"]


@dataclass(frozen=True)
class SimConfig:
    """Run parameters.

    Attributes
    ----------
    duration:
        Real-time length of the execution (``l(alpha)`` in the paper).
    rho:
        Hardware drift bound (Assumption 1).
    seed:
        Seed for all randomness (per-node RNGs and random delay policies).
    record_trace:
        Traces cost memory; long benign runs may disable them.
    engine:
        ``"scalar"`` (the reference heap loop below) or ``"batched"``
        (the vectorized :class:`~repro.sim.engine.BatchedEngine`).  The
        two are observably identical — same traces, same clocks, same
        messages — which the differential harness in
        ``tests/test_engine_equivalence.py`` enforces; ``"batched"``
        only changes wall-clock cost (``benchmarks/bench_sim.py``).
    """

    duration: float
    rho: float = DEFAULT_RHO
    seed: int = 0
    record_trace: bool = True
    engine: str = "scalar"


class Simulator:
    """One execution of algorithm processes under an adversary schedule."""

    def __init__(
        self,
        topology: Topology | DynamicTopology,
        processes: Mapping[int, Process],
        config: SimConfig,
        *,
        rate_schedules: Optional[Mapping[int, PiecewiseConstantRate]] = None,
        delay_policy: Optional[DelayPolicy] = None,
        fault_plan: Optional[FaultPlan] = None,
    ):
        # A DynamicTopology with no change-points is free: nothing is
        # scheduled, and the run stays byte-identical to the same run on
        # the plain static topology (the mobility mirror of the empty
        # FaultPlan contract).
        if isinstance(topology, DynamicTopology):
            self._dynamic: Optional[DynamicTopology] = (
                None if topology.is_static() else topology
            )
            topology = topology.initial
        else:
            self._dynamic = None
        if set(processes) != set(topology.nodes):
            raise SimulationError("processes must cover exactly the topology's nodes")
        if config.duration <= 0:
            raise SimulationError("duration must be positive")
        if config.engine not in ("scalar", "batched"):
            raise SimulationError(
                f"unknown engine {config.engine!r} (expected 'scalar' or 'batched')"
            )
        self.topology = topology
        self._topology_timeline: list[tuple[float, Topology]] = [(0.0, topology)]
        self.config = config
        self.delay_policy: DelayPolicy = delay_policy or HalfDistanceDelay()
        self._processes = dict(processes)
        self._queue = EventQueue()
        self._trace = ExecutionTrace()
        self._messages: list[Message] = []
        self._msg_counter = 0
        self._timer_generation = 0
        self.now = 0.0
        self._finished = False
        self._delay_rng = random.Random(config.seed ^ 0x5EED)
        bind_run = getattr(self.delay_policy, "bind_run", None)
        if bind_run is not None:
            bind_run(config.seed)

        schedules = dict(rate_schedules or {})
        self._hardware: dict[int, HardwareClock] = {}
        self._logical: dict[int, LogicalClock] = {}
        self._api: dict[int, NodeAPI] = {}
        for node in topology.nodes:
            schedule = schedules.get(node, PiecewiseConstantRate.constant(1.0))
            hw = HardwareClock(schedule, config.rho)
            lc = LogicalClock(hw)
            self._hardware[node] = hw
            self._logical[node] = lc
            self._api[node] = NodeAPI(
                self, node, lc, random.Random((config.seed * 1_000_003) ^ node)
            )

        # Promote CrashingProcess wrappers to native crash-stop windows:
        # the wrapper names a *hardware* reading, which the node's rate
        # schedule converts to an exact real time.
        plan = fault_plan or FaultPlan()
        for node, process in self._processes.items():
            if isinstance(process, CrashingProcess):
                plan = plan.with_crash(
                    node, self._hardware[node].time_at(process.crash_at_hardware)
                )
        # The empty plan builds no controller at all, keeping fault-free
        # runs byte-identical to a simulator without fault support.
        self._faults: Optional[FaultController] = (
            None if plan.is_empty() else FaultController(plan, topology, config.seed)
        )

    # ------------------------------------------------------------------
    # services used by NodeAPI

    def record(self, event: TraceEvent) -> None:
        if self.config.record_trace:
            self._trace.append(event)

    def send_message(self, sender: int, receiver: int, payload) -> None:
        if sender == receiver:
            raise SimulationError(f"node {sender} tried to message itself")
        if self._faults is not None and self._faults.node_down(sender):
            # Crashed nodes emit nothing.  Callbacks are already
            # suppressed, so this only catches misbehaving wrappers.
            return
        distance = self.topology.distance(sender, receiver)
        raw = self.delay_policy.delay(
            sender, receiver, self.now, distance, self._msg_counter, self._delay_rng
        )
        seq = self._msg_counter
        self._msg_counter += 1
        self.record(
            TraceEvent(
                real_time=self.now,
                node=sender,
                hardware=self._hardware[sender].value_at(self.now),
                logical=self._logical[sender].read(self.now),
                kind=SEND,
                detail=(receiver, payload),
            )
        )
        if raw == float("inf"):
            # Fault-injection sentinel (sim.faults.DROPPED): the node sent
            # but the network lost the message.  Outside the paper's
            # reliable model.
            return
        delay = validate_delay(raw, distance)
        delays = [delay]
        if self._faults is not None:
            # Link faults may lose the message, redraw its delay
            # (reordering), or add a duplicate copy.  Copies share the
            # send's seq: the network duplicated one message.
            delays = self._faults.outbound_delays(
                sender, receiver, self.now, distance, delay
            )
        for chosen in delays:
            message = Message(
                seq=seq,
                sender=sender,
                receiver=receiver,
                payload=payload,
                send_time=self.now,
                delay=validate_delay(chosen, distance),
            )
            self._messages.append(message)
            self._queue.push(message.receive_time, DeliverMessage(receiver, message))

    def set_timer(self, node: int, delta_hardware: float, name: str) -> None:
        if delta_hardware <= 0:
            raise SimulationError(f"timer delta must be positive, got {delta_hardware}")
        hw = self._hardware[node]
        fire_at = hw.time_at(hw.value_at(self.now) + delta_hardware)
        self._timer_generation += 1
        epoch = 0 if self._faults is None else self._faults.epoch(node)
        self._queue.push(fire_at, FireTimer(node, name, self._timer_generation, epoch))

    # ------------------------------------------------------------------
    # the event loop

    def run(self) -> Execution:
        """Execute until ``config.duration`` and return the finished execution."""
        if self._finished:
            raise SimulationError("a Simulator instance runs exactly once")
        self._finished = True
        if self.config.engine == "batched":
            # Hand the validated setup (clocks, fault controller, RNGs,
            # processes — all still untouched) to the vectorized engine.
            from repro.sim.engine import BatchedEngine

            return BatchedEngine(self).run()
        duration = self.config.duration

        if self._dynamic is not None:
            # Scheduled before everything else, so a swap at time t pops
            # ahead of same-instant deliveries, timers, and fault events:
            # all activity at t already runs on the new network.
            for at, topology in self._dynamic.snapshots[1:]:
                if at <= duration + TIME_EPS:
                    self._queue.push(at, TopologyChange(topology))

        if self._faults is not None:
            # Scheduled before the node activity below (topology swaps
            # are earlier still), so crash/recovery events pop before
            # same-instant deliveries and timers.
            self._faults.schedule(self._queue.push)

        for node in self.topology.nodes:
            self.record(
                TraceEvent(
                    real_time=0.0,
                    node=node,
                    hardware=0.0,
                    logical=self._logical[node].read(0.0),
                    kind=START,
                    detail=None,
                )
            )
        for node in self.topology.nodes:
            if self._faults is not None and self._faults.node_down(node):
                continue  # crashed at time 0: never starts
            self._processes[node].on_start(self._api[node])

        while self._queue:
            next_time = self._queue.peek_time()
            if next_time is None or next_time > duration + TIME_EPS:
                break
            time, event = self._queue.pop()
            self.now = time
            if isinstance(event, DeliverMessage):
                self._deliver(event.message)
            elif isinstance(event, FireTimer):
                self._fire_timer(event)
            elif isinstance(event, CrashNode):
                self._crash(event.node)
            elif isinstance(event, RecoverNode):
                self._recover(event.node)
            elif isinstance(event, TopologyChange):
                self._retopologize(event.topology)
            else:  # pragma: no cover - queue only ever holds these kinds
                raise SimulationError(f"unknown event {event!r}")
        self.now = duration
        return self._build_execution()

    def _deliver(self, message: Message) -> None:
        node = message.receiver
        if self._faults is not None and self._faults.delivery_suppressed(
            message, self.now
        ):
            return
        self.record(
            TraceEvent(
                real_time=self.now,
                node=node,
                hardware=self._hardware[node].value_at(self.now),
                logical=self._logical[node].read(self.now),
                kind=RECEIVE,
                detail=(message.sender, message.payload),
            )
        )
        self._processes[node].on_message(self._api[node], message.sender, message.payload)

    def _fire_timer(self, event: FireTimer) -> None:
        node = event.node
        if self._faults is not None and self._faults.timer_cancelled(
            node, event.epoch
        ):
            return
        self.record(
            TraceEvent(
                real_time=self.now,
                node=node,
                hardware=self._hardware[node].value_at(self.now),
                logical=self._logical[node].read(self.now),
                kind=TIMER,
                detail=event.name,
            )
        )
        self._processes[node].on_timer(self._api[node], event.name)

    def _crash(self, node: int) -> None:
        self._faults.on_crash(node)
        self.record(
            TraceEvent(
                real_time=self.now,
                node=node,
                hardware=self._hardware[node].value_at(self.now),
                logical=self._logical[node].read(self.now),
                kind=CRASH,
                detail=None,
            )
        )

    def _recover(self, node: int) -> None:
        self._faults.on_recover(node)
        self.record(
            TraceEvent(
                real_time=self.now,
                node=node,
                hardware=self._hardware[node].value_at(self.now),
                logical=self._logical[node].read(self.now),
                kind=RECOVER,
                detail=None,
            )
        )
        self._processes[node].on_recover(self._api[node])

    def _retopologize(self, topology: Topology) -> None:
        """Atomically swap the distance/adjacency tables.

        Everything routed through ``self.topology`` — neighbor lists,
        distances, delay validation — sees the new network from this
        instant on.  Messages already in flight keep their assigned
        delays (validated against the distance at *send* time; see
        :meth:`Execution.check_delay_bounds`).  The change is recorded
        with ``node = -1``: it is the adversary's action, invisible to
        every node's local projection.
        """
        self.topology = topology
        self._topology_timeline.append((self.now, topology))
        self.record(
            TraceEvent(
                real_time=self.now,
                node=-1,
                hardware=0.0,
                logical=0.0,
                kind=TOPOLOGY,
                detail=topology.name,
            )
        )

    def _build_execution(self) -> Execution:
        # Execution.topology is the t = 0 network; dynamic runs also
        # carry the full (time, topology) timeline so measurements can
        # evaluate distance-dependent quantities against the network
        # that was actually live at each instant.
        return Execution(
            topology=self._topology_timeline[0][1],
            duration=self.config.duration,
            rho=self.config.rho,
            hardware={n: self._hardware[n] for n in self.topology.nodes},
            logical={n: self._logical[n] for n in self.topology.nodes},
            trace=self._trace,
            messages=list(self._messages),
            fault_stats=None if self._faults is None else dict(self._faults.stats),
            topology_timeline=(
                None if self._dynamic is None else tuple(self._topology_timeline)
            ),
        )


def run_simulation(
    topology: Topology | DynamicTopology,
    processes: Mapping[int, Process],
    config: SimConfig,
    *,
    rate_schedules: Optional[Mapping[int, PiecewiseConstantRate]] = None,
    delay_policy: Optional[DelayPolicy] = None,
    fault_plan: Optional[FaultPlan] = None,
) -> Execution:
    """Convenience wrapper: build a :class:`Simulator` and run it."""
    sim = Simulator(
        topology,
        processes,
        config,
        rate_schedules=rate_schedules,
        delay_policy=delay_policy,
        fault_plan=fault_plan,
    )
    return sim.run()
