"""Messages and delay policies.

The model (Section 3) says a message from ``i`` to ``j`` arrives after a
delay in ``[0, d_ij]`` where ``d_ij`` is the *distance* (delay
uncertainty).  Who picks the delay?  The adversary.  A
:class:`DelayPolicy` is that adversary's delay strategy; the simulator
validates every choice against the ``[0, d_ij]`` band.

The baseline policy throughout Section 8 of the paper is "exactly half the
distance" (:class:`HalfDistanceDelay`); the lower-bound constructions
replace it inside warped windows (see :mod:`repro.gcs.oracle`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Optional, Protocol

from repro.errors import DelayBoundError

__all__ = [
    "Message",
    "DelayPolicy",
    "HalfDistanceDelay",
    "FixedFractionDelay",
    "UniformRandomDelay",
    "PerPairDelay",
    "JitterDelay",
    "SequenceDelay",
    "validate_delay",
]


@dataclass(frozen=True)
class Message:
    """An in-flight message.

    ``seq`` is the global send order; ``send_time``/``receive_time`` are
    real times (invisible to nodes — nodes only ever see ``payload`` and
    ``sender``).
    """

    seq: int
    sender: int
    receiver: int
    payload: Any
    send_time: float
    delay: float

    @property
    def receive_time(self) -> float:
        return self.send_time + self.delay


class DelayPolicy(Protocol):
    """The adversary's delay strategy.

    Implementations return the delay for a message from ``sender`` to
    ``receiver`` handed to the network at real time ``send_time``; the
    simulator checks the result against ``[0, distance]``.
    """

    def delay(
        self,
        sender: int,
        receiver: int,
        send_time: float,
        distance: float,
        seq: int,
        rng: random.Random,
    ) -> float:
        """Return the message delay in real-time units."""
        ...


def validate_delay(delay: float, distance: float, *, tol: float = 1e-9) -> float:
    """Clamp-and-check a delay against the model band ``[0, distance]``."""
    if delay < -tol or delay > distance + tol:
        raise DelayBoundError(
            f"delay {delay} outside [0, {distance}] allowed by the model"
        )
    return min(max(delay, 0.0), distance)


@dataclass(frozen=True)
class HalfDistanceDelay:
    """Every message takes exactly ``d_ij / 2`` — the paper's quiet baseline."""

    def delay(
        self,
        sender: int,
        receiver: int,
        send_time: float,
        distance: float,
        seq: int,
        rng: random.Random,
    ) -> float:
        return distance / 2.0

    def broadcast_delays(
        self, sender: int, receivers: list[int], distances: list[float]
    ) -> list[float]:
        """Whole-neighborhood form of :meth:`delay` for the batched engine.

        Only policies whose delay depends purely on the pair distance can
        offer this hook — it must return exactly ``delay(...)``'s floats,
        which lets the engine precompute and batch-schedule a broadcast's
        deliveries without touching the RNG stream.
        """
        return [d / 2.0 for d in distances]


@dataclass(frozen=True)
class FixedFractionDelay:
    """Every message takes ``fraction * d_ij`` (``fraction`` in ``[0, 1]``)."""

    fraction: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.fraction <= 1.0:
            raise DelayBoundError(f"fraction must be in [0, 1], got {self.fraction}")

    def delay(
        self,
        sender: int,
        receiver: int,
        send_time: float,
        distance: float,
        seq: int,
        rng: random.Random,
    ) -> float:
        return self.fraction * distance

    def broadcast_delays(
        self, sender: int, receivers: list[int], distances: list[float]
    ) -> list[float]:
        """Distance-only hook for the batched engine (see
        :meth:`HalfDistanceDelay.broadcast_delays`)."""
        return [self.fraction * d for d in distances]


@dataclass(frozen=True)
class UniformRandomDelay:
    """Delay uniform in ``[lo_frac * d, hi_frac * d]`` — a benign random network."""

    lo_frac: float = 0.0
    hi_frac: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.lo_frac <= self.hi_frac <= 1.0:
            raise DelayBoundError(
                f"need 0 <= lo <= hi <= 1, got [{self.lo_frac}, {self.hi_frac}]"
            )

    def delay(
        self,
        sender: int,
        receiver: int,
        send_time: float,
        distance: float,
        seq: int,
        rng: random.Random,
    ) -> float:
        return rng.uniform(self.lo_frac * distance, self.hi_frac * distance)


class PerPairDelay:
    """Fixed per-ordered-pair delays with a fallback policy.

    Used to script asymmetric scenarios like the Section 2 three-node
    example (delay ``D`` one way, ``0`` the other), and to change a pair's
    delay at a chosen real time (``set_after``).
    """

    def __init__(self, fallback: Optional[DelayPolicy] = None):
        self._fixed: dict[tuple[int, int], float] = {}
        self._timed: dict[tuple[int, int], list[tuple[float, float]]] = {}
        self._fallback: DelayPolicy = fallback or HalfDistanceDelay()

    def set(self, sender: int, receiver: int, delay: float) -> "PerPairDelay":
        """Fix the delay for messages ``sender -> receiver``."""
        self._fixed[(sender, receiver)] = delay
        return self

    def set_after(
        self, sender: int, receiver: int, time: float, delay: float
    ) -> "PerPairDelay":
        """From real time ``time`` on, messages ``sender -> receiver`` take ``delay``."""
        self._timed.setdefault((sender, receiver), []).append((time, delay))
        self._timed[(sender, receiver)].sort()
        return self

    def delay(
        self,
        sender: int,
        receiver: int,
        send_time: float,
        distance: float,
        seq: int,
        rng: random.Random,
    ) -> float:
        key = (sender, receiver)
        timed = self._timed.get(key)
        if timed:
            chosen = None
            for start, value in timed:
                if send_time >= start:
                    chosen = value
            if chosen is not None:
                return chosen
        if key in self._fixed:
            return self._fixed[key]
        return self._fallback.delay(sender, receiver, send_time, distance, seq, rng)


@dataclass(frozen=True)
class JitterDelay:
    """A common propagation base plus small uniform jitter, for RBS clusters.

    Models a radio broadcast: everyone hears the signal after ``base``
    plus at most ``d_ij`` of jitter, so the *uncertainty* stays ``d_ij``
    while the absolute delay can be larger than the distance.  To stay
    inside the model band the base must not exceed the distance; RBS
    topologies therefore carry the base inside ``d_ij`` (see
    ``topology.broadcast_cluster``).
    """

    jitter_frac: float = 1.0

    def delay(
        self,
        sender: int,
        receiver: int,
        send_time: float,
        distance: float,
        seq: int,
        rng: random.Random,
    ) -> float:
        return rng.uniform(0.0, self.jitter_frac * distance)


class SequenceDelay:
    """Delays scripted per message sequence number (replay of a recorded run)."""

    def __init__(self, delays: dict[int, float], fallback: Optional[DelayPolicy] = None):
        self._delays = dict(delays)
        self._fallback: DelayPolicy = fallback or HalfDistanceDelay()

    def delay(
        self,
        sender: int,
        receiver: int,
        send_time: float,
        distance: float,
        seq: int,
        rng: random.Random,
    ) -> float:
        if seq in self._delays:
            return self._delays[seq]
        return self._fallback.delay(sender, receiver, send_time, distance, seq, rng)
