"""Fault injection (an extension beyond the paper's reliable model).

The paper assumes a reliable network and non-crashing nodes.  Real
deployments of the algorithms we implement do not enjoy that luxury, so
this module provides wrappers for robustness testing:

* :class:`CrashingProcess` — a node that silently stops at a chosen
  hardware-clock reading (crash-stop).
* :class:`DroppingDelayPolicy` — drops a fraction of messages.  Dropping
  is modeled as an *infinite* delay, which leaves the model band (delays
  must lie in ``[0, d_ij]``) — so a dropped message is simply never
  enqueued.  These wrappers are therefore **never** used in the paper
  experiments E01–E11; they exist for the failure-injection test suite.
"""

from __future__ import annotations

import random
from typing import Any

from repro.sim.messages import DelayPolicy
from repro.sim.node import NodeAPI, Process

__all__ = ["CrashingProcess", "DroppingDelayPolicy", "DROPPED"]

#: Sentinel delay meaning "never delivered"; understood by the simulator
#: wrapper below (the message is discarded before scheduling).
DROPPED = float("inf")


class CrashingProcess(Process):
    """Wrap a process so it ignores everything after a crash point.

    The crash point is a hardware clock reading, because that is the only
    notion of time the node has.
    """

    def __init__(self, inner: Process, crash_at_hardware: float):
        self.inner = inner
        self.crash_at_hardware = crash_at_hardware

    def _alive(self, api: NodeAPI) -> bool:
        return api.hardware_now() < self.crash_at_hardware

    def on_start(self, api: NodeAPI) -> None:
        if self._alive(api):
            self.inner.on_start(api)

    def on_message(self, api: NodeAPI, sender: int, payload: Any) -> None:
        if self._alive(api):
            self.inner.on_message(api, sender, payload)

    def on_timer(self, api: NodeAPI, name: str) -> None:
        if self._alive(api):
            self.inner.on_timer(api, name)


class DroppingDelayPolicy:
    """Drop each message with probability ``drop_prob``; else delegate.

    Uses its own deterministic RNG so drop decisions do not perturb the
    inner policy's random stream.
    """

    def __init__(self, inner: DelayPolicy, drop_prob: float, seed: int = 0):
        if not 0.0 <= drop_prob < 1.0:
            raise ValueError(f"drop_prob must be in [0, 1), got {drop_prob}")
        self.inner = inner
        self.drop_prob = drop_prob
        self._rng = random.Random(seed ^ 0xD60B)
        self.dropped = 0

    def delay(
        self,
        sender: int,
        receiver: int,
        send_time: float,
        distance: float,
        seq: int,
        rng: random.Random,
    ) -> float:
        if self._rng.random() < self.drop_prob:
            self.dropped += 1
            return DROPPED
        return self.inner.delay(sender, receiver, send_time, distance, seq, rng)
