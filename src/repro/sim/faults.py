"""Fault & churn adversary subsystem (an extension beyond the paper).

The paper assumes a reliable network and non-crashing nodes.  Real
deployments of the algorithms we implement do not enjoy that luxury, so
this module gives the adversary a second dial besides rates and delays:
a declarative, picklable :class:`FaultPlan` that the
:class:`~repro.sim.simulator.Simulator` consumes natively.

A plan is a frozen value with three parts:

* **crash schedules** (:class:`CrashWindow`) — crash-stop (no recovery)
  or crash-recovery windows per node, in real (adversary) time;
* **link faults** (:class:`LinkFault`) — per-link (or wildcard) loss,
  duplication and reordering probabilities plus hard down windows;
* a ``seed_salt`` folded into the fault RNG so distinct plans draw
  distinct streams even under the same simulation seed.

Crash semantics (the contract tests enforce)
--------------------------------------------
A node that is *down* executes nothing: its timers do not fire (and are
not even recorded in the trace), messages addressed to it are lost, and
it cannot send.  Timers pending when the node crashed are cancelled —
they never fire, not even after recovery (timer state is volatile).  By
default a crash also loses the node's own messages still in flight
(``lose_in_flight=True``: the network interface dies mid-transmission);
set it to ``False`` for the classical fail-stop reading in which the
wire outlives the sender.  The node's hardware clock keeps ticking
through the outage (hardware is physical), and its logical clock keeps
advancing at the last configured multiplier, so Requirement 1 (validity)
is never violated by a crash.  On recovery the simulator invokes
:meth:`~repro.sim.node.Process.on_recover`, where algorithms re-arm
timers and discard stale neighbor state.

Determinism contract
--------------------
All fault decisions are drawn from one dedicated RNG seeded by
``(simulation seed, plan seed_salt)`` in event order, so identical
``(plan, seed)`` pairs produce identical traces at any sweep worker
count.  An **empty plan is free**: the simulator builds no controller at
all, leaving the fault-free code path — and therefore the trace —
byte-identical to a run with ``fault_plan=None``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Any, Optional

from repro.errors import FaultError
from repro.sim.messages import DelayPolicy
from repro.sim.node import NodeAPI, Process
from repro.topology.base import Topology

__all__ = [
    "CrashWindow",
    "LinkFault",
    "FaultPlan",
    "FaultController",
    "CrashingProcess",
    "DroppingDelayPolicy",
    "DROPPED",
]

#: Sentinel delay meaning "never delivered"; understood by the simulator
#: (the message is discarded before scheduling).
DROPPED = float("inf")


# ----------------------------------------------------------------------
# the declarative plan


@dataclass(frozen=True)
class CrashWindow:
    """One crash of one node, in real (adversary) time.

    ``recover_at=None`` means crash-stop: the node never comes back.
    With a recovery time, the node is down on ``[at, recover_at)`` and
    its process gets an ``on_recover`` callback at ``recover_at``.
    ``lose_in_flight`` controls whether messages the node had already
    handed to the network are lost at the crash instant (default) or
    keep travelling.
    """

    node: int
    at: float
    recover_at: Optional[float] = None
    lose_in_flight: bool = True

    def validate(self, topology: Topology) -> None:
        if self.node not in set(topology.nodes):
            raise FaultError(f"crash names unknown node {self.node}")
        if self.at < 0:
            raise FaultError(f"crash time must be >= 0, got {self.at}")
        if self.recover_at is not None and self.recover_at <= self.at:
            raise FaultError(
                f"recovery at {self.recover_at} must follow the crash at {self.at}"
            )


@dataclass(frozen=True)
class LinkFault:
    """Unreliability of one directed link (or a wildcard set of links).

    ``sender``/``receiver`` of ``None`` match every node, so
    ``LinkFault(loss=0.1)`` is a globally lossy network.  Per message,
    in order: if the send time falls in a ``down`` window the message is
    lost outright; else it is lost with probability ``loss``; else with
    probability ``reorder`` its delay is redrawn uniformly over the full
    ``[0, d_ij]`` band (destroying FIFO order on the link); finally with
    probability ``duplicate`` the network delivers a second copy with an
    independent in-band delay.
    """

    sender: Optional[int] = None
    receiver: Optional[int] = None
    loss: float = 0.0
    duplicate: float = 0.0
    reorder: float = 0.0
    down: tuple[tuple[float, float], ...] = ()

    def matches(self, sender: int, receiver: int) -> bool:
        return (self.sender is None or self.sender == sender) and (
            self.receiver is None or self.receiver == receiver
        )

    def down_at(self, t: float) -> bool:
        return any(t0 <= t < t1 for t0, t1 in self.down)

    def validate(self, topology: Topology) -> None:
        nodes = set(topology.nodes)
        for end in (self.sender, self.receiver):
            if end is not None and end not in nodes:
                raise FaultError(f"link fault names unknown node {end}")
        for name in ("loss", "duplicate", "reorder"):
            p = getattr(self, name)
            if not 0.0 <= p < 1.0:
                raise FaultError(f"{name} probability must be in [0, 1), got {p}")
        for t0, t1 in self.down:
            if not 0.0 <= t0 < t1:
                raise FaultError(f"down window ({t0}, {t1}) is not ordered")


@dataclass(frozen=True)
class FaultPlan:
    """A complete fault scenario: crash schedules + link faults.

    Frozen, picklable, and composable through the fluent ``with_*``
    builders (each returns a new plan).  ``FaultPlan()`` is the empty
    plan, which the simulator treats as "no fault machinery at all".
    """

    crashes: tuple[CrashWindow, ...] = ()
    links: tuple[LinkFault, ...] = ()
    seed_salt: int = 0

    # fluent builders --------------------------------------------------

    def with_crash(
        self,
        node: int,
        at: float,
        *,
        recover_at: Optional[float] = None,
        lose_in_flight: bool = True,
    ) -> "FaultPlan":
        """Add one crash (crash-stop, or crash-recovery with ``recover_at``)."""
        window = CrashWindow(node, at, recover_at, lose_in_flight)
        return replace(self, crashes=self.crashes + (window,))

    def with_link(
        self,
        sender: Optional[int] = None,
        receiver: Optional[int] = None,
        *,
        loss: float = 0.0,
        duplicate: float = 0.0,
        reorder: float = 0.0,
        down: tuple[tuple[float, float], ...] = (),
    ) -> "FaultPlan":
        """Add one (possibly wildcard) directed link fault."""
        fault = LinkFault(sender, receiver, loss, duplicate, reorder, tuple(down))
        return replace(self, links=self.links + (fault,))

    def with_link_down(
        self, a: int, b: int, *windows: tuple[float, float]
    ) -> "FaultPlan":
        """Take the undirected link ``a <-> b`` down over the given windows."""
        downs = tuple(windows)
        return replace(
            self,
            links=self.links
            + (LinkFault(a, b, down=downs), LinkFault(b, a, down=downs)),
        )

    # queries ----------------------------------------------------------

    def is_empty(self) -> bool:
        """True iff the plan injects nothing (the fault-free fast path)."""
        return not self.crashes and not self.links

    def validate(self, topology: Topology) -> None:
        """Fail fast on plans that reference unknown nodes or bad values."""
        crashed: set[int] = set()
        for crash in self.crashes:
            crash.validate(topology)
            if crash.node in crashed:
                raise FaultError(
                    f"node {crash.node} has multiple crash windows; "
                    "one window per node is supported"
                )
            crashed.add(crash.node)
        for link in self.links:
            link.validate(topology)


# ----------------------------------------------------------------------
# the runtime controller (one per faulted simulation)


class FaultController:
    """Executes a :class:`FaultPlan` inside one simulation.

    Owned by the simulator, consulted on every send, delivery and timer
    firing.  All randomness comes from a dedicated RNG derived from the
    simulation seed and the plan's salt, drawn in deterministic event
    order.
    """

    def __init__(self, plan: FaultPlan, topology: Topology, seed: int):
        plan.validate(topology)
        self.plan = plan
        self._rng = random.Random(((seed * 0x9E3779B1) ^ plan.seed_salt) ^ 0xFA017)
        self._crash_by_node = {c.node: c for c in plan.crashes}
        #: nodes currently down (crashes at t <= 0 start down).
        self._down: set[int] = {c.node for c in plan.crashes if c.at <= 0.0}
        #: per-node crash epoch; timers remember the epoch they were set
        #: in and are cancelled by any later crash.
        self._epoch: dict[int, int] = {node: 1 for node in self._down}
        #: matching link-fault rules per directed pair, filled lazily —
        #: the rule set is fixed for the run, and churn plans carry two
        #: rules per edge, so scanning plan.links on every send is
        #: O(links x messages) wasted work.
        self._link_rules: dict[tuple[int, int], tuple[LinkFault, ...]] = {}
        self.stats: dict[str, int] = {
            "crashes": 0,
            "recoveries": 0,
            "lost_link_down": 0,
            "lost_random": 0,
            "lost_receiver_down": 0,
            "lost_in_flight": 0,
            "duplicated": 0,
            "reordered": 0,
            "timers_cancelled": 0,
        }

    # crash lifecycle --------------------------------------------------

    def schedule(self, push) -> None:
        """Push crash/recovery events via ``push(time, event)``.

        Called once before the event loop, so these events take the
        lowest sequence numbers and pop *before* same-instant deliveries
        or timers: a crash at time ``t`` suppresses everything else at
        ``t``, and a recovery at ``t`` precedes deliveries at ``t``.
        """
        from repro.sim.events import CrashNode, RecoverNode

        for crash in self.plan.crashes:
            # Time-0 crashes are already in the down preseed (so the
            # node never starts) but still get their queue event, which
            # records the CRASH trace entry and counts in the stats.
            push(max(crash.at, 0.0), CrashNode(crash.node))
            if crash.recover_at is not None:
                push(crash.recover_at, RecoverNode(crash.node))

    def on_crash(self, node: int) -> None:
        self._down.add(node)
        self._epoch[node] = self._epoch.get(node, 0) + 1
        self.stats["crashes"] += 1

    def on_recover(self, node: int) -> None:
        self._down.discard(node)
        self.stats["recoveries"] += 1

    def node_down(self, node: int) -> bool:
        return node in self._down

    def epoch(self, node: int) -> int:
        return self._epoch.get(node, 0)

    def timer_cancelled(self, node: int, set_epoch: int) -> bool:
        """A timer fires only if its node is up and has not crashed since.

        Both engines route every firing through this one check — the
        batched engine's tuple-coded timer events carry the same
        ``epoch`` the scalar :class:`~repro.sim.events.FireTimer` does —
        so a crash window cancels the identical set of firings (and
        increments ``timers_cancelled`` identically) either way.
        """
        if node in self._down or set_epoch != self.epoch(node):
            self.stats["timers_cancelled"] += 1
            return True
        return False

    # the network ------------------------------------------------------

    def outbound_delays(
        self, sender: int, receiver: int, send_time: float, distance: float,
        delay: float,
    ) -> list[float]:
        """Fault-adjusted delays for one send: ``[]`` = lost, two = duplicated."""
        key = (sender, receiver)
        rules = self._link_rules.get(key)
        if rules is None:
            rules = tuple(f for f in self.plan.links if f.matches(*key))
            self._link_rules[key] = rules
        if not rules:
            return [delay]
        for rule in rules:
            if rule.down_at(send_time):
                self.stats["lost_link_down"] += 1
                return []
        for rule in rules:
            if rule.loss > 0.0 and self._rng.random() < rule.loss:
                self.stats["lost_random"] += 1
                return []
        for rule in rules:
            if rule.reorder > 0.0 and self._rng.random() < rule.reorder:
                delay = self._rng.uniform(0.0, distance)
                self.stats["reordered"] += 1
        delays = [delay]
        for rule in rules:
            if rule.duplicate > 0.0 and self._rng.random() < rule.duplicate:
                delays.append(self._rng.uniform(0.0, distance))
                self.stats["duplicated"] += 1
        return delays

    def delivery_suppressed(self, message, now: float) -> bool:
        """Whether a delivery is lost to a crash (receiver down, or the
        sender crashed while the message was in flight)."""
        return self.delivery_suppressed_fields(
            message.sender, message.receiver, message.send_time, now
        )

    def delivery_suppressed_fields(
        self, sender: int, receiver: int, send_time: float, now: float
    ) -> bool:
        """Field-level form of :meth:`delivery_suppressed`.

        The batched engine stores messages columnarly and has no
        :class:`~repro.sim.messages.Message` object at delivery time;
        both engines must land in this one implementation so the crash
        bookkeeping (stats included) stays identical.
        """
        if receiver in self._down:
            self.stats["lost_receiver_down"] += 1
            return True
        crash = self._crash_by_node.get(sender)
        if (
            crash is not None
            and crash.lose_in_flight
            and send_time < crash.at <= now
        ):
            self.stats["lost_in_flight"] += 1
            return True
        return False


# ----------------------------------------------------------------------
# wrappers (the pre-FaultPlan interface, kept for convenience)


class CrashingProcess(Process):
    """Crash-stop wrapper: fail-stop at a chosen *hardware* clock reading.

    The crash point is a hardware reading because that is the only
    notion of time the node has.  The :class:`~repro.sim.simulator`
    **promotes** this wrapper to a native crash: at construction time it
    converts ``crash_at_hardware`` to the real time at which the node's
    hardware clock reaches that reading (the rate schedule makes the
    conversion exact) and registers a crash-stop
    :class:`CrashWindow` there.

    Chosen crash semantics (enforced natively, see the module docstring):

    * the node executes **nothing** at hardware readings at or beyond
      the crash point — no callbacks, no sends, no timer re-arms, and
      pending timers never fire (they are not even recorded in the
      trace);
    * messages the node had handed to the network but still in flight at
      the crash instant are lost with it (``lose_in_flight``);
    * the node's clocks keep advancing (hardware is physical), so skew
      metrics still see the dead node drift.

    The callback guards below are kept as defense in depth for
    simulators that do not promote the wrapper; prefer
    ``FaultPlan().with_crash(...)`` in new code.
    """

    def __init__(self, inner: Process, crash_at_hardware: float):
        if crash_at_hardware < 0:
            raise ValueError(
                f"crash reading must be >= 0, got {crash_at_hardware}"
            )
        self.inner = inner
        self.crash_at_hardware = crash_at_hardware
        self._dead = False

    def _alive(self, api: NodeAPI) -> bool:
        if not self._dead and api.hardware_now() >= self.crash_at_hardware:
            self._dead = True
        return not self._dead

    def on_start(self, api: NodeAPI) -> None:
        if self._alive(api):
            self.inner.on_start(api)

    def on_message(self, api: NodeAPI, sender: int, payload: Any) -> None:
        if self._alive(api):
            self.inner.on_message(api, sender, payload)

    def on_timer(self, api: NodeAPI, name: str) -> None:
        if self._alive(api):
            self.inner.on_timer(api, name)


class DroppingDelayPolicy:
    """Drop each message with probability ``drop_prob``; else delegate.

    Uses its own deterministic RNG so drop decisions do not perturb the
    inner policy's random stream.  The simulator calls :meth:`bind_run`
    at construction, re-deriving the RNG and zeroing the ``dropped``
    counter from the run's seed — so one policy instance shared across a
    whole sweep grid leaks no state between cells, and identical runs
    drop identical messages.
    """

    def __init__(self, inner: DelayPolicy, drop_prob: float, seed: int = 0):
        if not 0.0 <= drop_prob < 1.0:
            raise ValueError(f"drop_prob must be in [0, 1), got {drop_prob}")
        self.inner = inner
        self.drop_prob = drop_prob
        self.seed = seed
        self._rng = random.Random(seed ^ 0xD60B)
        self.dropped = 0

    def bind_run(self, run_seed: int) -> None:
        """Reset per-run state; called by the simulator before each run."""
        self._rng = random.Random(((run_seed * 0x9E3779B1) ^ self.seed) ^ 0xD60B)
        self.dropped = 0

    def delay(
        self,
        sender: int,
        receiver: int,
        send_time: float,
        distance: float,
        seq: int,
        rng: random.Random,
    ) -> float:
        if self._rng.random() < self.drop_prob:
            self.dropped += 1
            return DROPPED
        return self.inner.delay(sender, receiver, send_time, distance, seq, rng)
