"""The batched simulation engine (``SimConfig(engine="batched")``).

The scalar event loop in :mod:`repro.sim.simulator` is the *reference
semantics*: one heap pop per event, one bisect per clock read, one
:class:`~repro.sim.trace.TraceEvent` per action.  That loop caps
realistic gossip runs near diameter ~512 (experiment E15) even though
the model makes the workload highly regular — periodic-broadcast gossip
generates dense epochs of timer firings and deliveries whose order is
fully determined by ``(time, seq)``.  This module exploits that
regularity without changing a single observable:

* **vectorized event queue** — a :class:`~repro.sim.events.BatchEventQueue`
  of ``(time, seq)``-sorted spines; epochs of scheduled work merge in
  one numpy pass instead of one heap push per event, and the drain loop
  is a cursor advance instead of heap rebalancing;
* **cursor clocks** — the simulation clock ``now`` is nondecreasing, so
  piecewise schedules are evaluated by *walking* a segment cursor
  instead of bisecting from scratch; the per-segment arithmetic is the
  exact expression of the scalar ``value_at``/``read``, so every reading
  is bitwise identical;
* **precomputed broadcast delivery** — delay policies that depend only
  on the pair distance (:class:`~repro.sim.messages.HalfDistanceDelay`,
  :class:`~repro.sim.messages.FixedFractionDelay`) declare a
  ``broadcast_delays`` hook; the engine validates each node's
  per-neighbor delays once per topology and schedules a whole
  broadcast's deliveries in one pass (vectorized for dense
  neighborhoods);
* **columnar trace and message stores** — the hot loop appends plain
  tuples; :class:`~repro.sim.trace.ColumnarTrace` and the
  :class:`~repro.sim.messages.Message` list materialize once at the end.

Equivalence contract
--------------------
For every configuration, ``engine="batched"`` must produce the same
execution as ``engine="scalar"``: identical trace digests, identical
logical-clock segments (hence bitwise-equal logical matrices), identical
message records, identical topology timelines and fault statistics.
This is the same discipline as the empty-FaultPlan and
static-DynamicTopology invariants, enforced by the differential harness
(``tests/test_engine_equivalence.py`` and ``tests/_engine_helpers.py``)
across the full algorithm x topology x fault x mobility grid, plus
hypothesis-generated random scenarios.  All randomness flows through the
same RNG objects in the same draw order: fault decisions, random delay
policies, and node RNGs are untouched by the batching — a policy or
fault plan that draws per send simply keeps the per-send path.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro._constants import TIME_EPS
from repro.errors import SimulationError, ValidityError
from repro.sim.clock import LogicalClock
from repro.sim.events import BatchEventQueue, CrashNode
from repro.sim.execution import Execution
from repro.sim.messages import Message, validate_delay
from repro.sim.node import NodeAPI
from repro.sim.trace import (
    CRASH,
    ColumnarTrace,
    JUMP,
    RATE,
    RECEIVE,
    RECOVER,
    SEND,
    START,
    TIMER,
    TOPOLOGY,
    TraceEvent,
)

__all__ = ["BatchedEngine"]

#: Event kind codes inside the batched queue.  The two hot kinds are
#: encoded as bare ints instead of ``(KIND, ...fields)`` tuples: a
#: delivery is its message-store index (``>= 0``), a fault-free
#: default-named timer is ``-1 - node``.  Tuples are reserved for named
#: or fault-epoch timers and the rare control kinds below.
_TIMER = 1
_CRASH = 2
_RECOVER = 3
_TOPOLOGY = 4

#: Neighborhood size at which broadcast delivery switches from the
#: per-edge python loop to one vectorized ``push_batch``.
_DENSE_FANOUT = 32

#: Sentinel marking a node API's cached broadcast pairs as needing a
#: rebuild (distinct from ``None``, which marks the per-send fallback).
_STALE = object()


class _ScheduleCursor:
    """Exact-walking evaluator for one piecewise-constant rate schedule.

    ``value`` and ``invert`` compute the *same float expressions* as
    :meth:`PiecewiseConstantRate.value_at` / ``invert`` — only the
    segment lookup differs: instead of bisecting on every call, the
    cursor walks from its last position (simulation time only moves
    forward, and timer targets only move a few segments ahead), which
    is O(1) amortized.  The bidirectional walk lands on exactly the
    segment ``bisect_right`` would pick, so readings are bitwise equal
    to the scalar path.
    """

    __slots__ = ("starts", "rates", "cumulative", "n", "k", "_last_t", "_last_h")

    def __init__(self, schedule):
        self.starts = schedule.starts
        self.rates = schedule.rates
        self.cumulative = schedule._cumulative
        self.n = len(schedule.starts)
        self.k = 0
        # One-entry memo: handling a single event reads H(now) several
        # times (logical read, jump record, timer rescheduling), all at
        # the same t.  The schedule never changes mid-run, so caching a
        # pure function's last result is exact.
        self._last_t = float("nan")
        self._last_h = 0.0

    def value(self, t: float) -> float:
        """``H(t)`` — identical to ``schedule.value_at(t)``."""
        if t == self._last_t:
            return self._last_h
        k, starts, n = self.k, self.starts, self.n
        while k + 1 < n and t >= starts[k + 1]:
            k += 1
        while k > 0 and t < starts[k]:
            k -= 1
        self.k = k
        h = self.cumulative[k] + (t - starts[k]) * self.rates[k]
        self._last_t = t
        self._last_h = h
        return h

    def invert(self, value: float) -> float:
        """The real time at which ``H(t) == value`` — identical to
        ``schedule.invert(value)``."""
        k, cumulative, n = self.k, self.cumulative, self.n
        while k + 1 < n and value >= cumulative[k + 1]:
            k += 1
        while k > 0 and value < cumulative[k]:
            k -= 1
        self.k = k
        return self.starts[k] + (value - cumulative[k]) / self.rates[k]


class _CursorLogicalClock(LogicalClock):
    """A :class:`LogicalClock` whose live ``read`` uses a schedule cursor.

    The scalar ``read(t)`` recomputes the hardware reading at the
    current segment's start on every call; here that reading is cached
    when a segment is appended (it is a pure function of the segment
    start, so the cache is exact) and the hardware reading at ``t``
    comes from the cursor.  The returned value is the identical float
    expression — ``value + mult * (H(t) - H(t_seg))`` — so jumps,
    multiplier changes, and every recorded trace value are bitwise equal
    to the scalar engine's.  Post-hoc analysis (``value_at`` /
    ``values_at``) is inherited unchanged.
    """

    def __init__(self, hardware, cursor: _ScheduleCursor, initial_value: float = 0.0):
        super().__init__(hardware, initial_value)
        self._cursor = cursor
        self._h_seg = cursor.value(self._times[-1])

    def read(self, t: float) -> float:
        return self._values[-1] + self._mults[-1] * (
            self._cursor.value(t) - self._h_seg
        )

    def jump_to(self, t: float, target: float) -> float:
        # Same floats as the scalar jump_to -> jump_by chain, with the
        # redundant second read folded away: jump_by's ``read(t)`` is
        # bitwise ``current``, so its new value is ``current + amount``.
        current = self._values[-1] + self._mults[-1] * (
            self._cursor.value(t) - self._h_seg
        )
        if target <= current + TIME_EPS:
            return 0.0
        amount = target - current
        self._append_segment(t, current + amount, self._mults[-1])
        self._total_jump += amount
        return amount

    def _append_segment(self, t: float, value: float, mult: float) -> None:
        # The scalar implementation, flattened, plus the segment-start
        # hardware cache refresh.
        times = self._times
        last = times[-1]
        if t < last - TIME_EPS:
            raise ValidityError(
                f"clock action at t={t} precedes previous action at {last}"
            )
        if abs(t - last) <= TIME_EPS:
            self._values[-1] = value
            self._mults[-1] = mult
            times[-1] = min(last, t)
        else:
            times.append(t)
            self._values.append(value)
            self._mults.append(mult)
        self._h_seg = self._cursor.value(times[-1])


class _FastNodeAPI(NodeAPI):
    """The standard :class:`NodeAPI` surface on batched-engine internals.

    Algorithms cannot tell the difference: every method returns the same
    values and records the same trace actions as the scalar engine's
    API; only the evaluation strategy (cursor clocks, columnar trace
    rows, batched broadcast) changes.
    """

    def __init__(self, simulator, node, logical, rng):
        super().__init__(simulator, node, logical, rng)
        # Engine internals with run-stable identity (the queue's pending
        # lists are cleared in place on merge, never reassigned), cached
        # to keep the hottest per-event methods free of chained lookups.
        queue = simulator._queue
        self._queue = queue
        self._pend_times = queue._pend_times
        self._pend_events = queue._pend_events
        self._faults = simulator._faults
        #: Validated (neighbor, delay) pairs for the current topology,
        #: ``None`` when broadcasts must take the general per-send path,
        #: or ``_STALE`` until (re)built — the engine marks every API
        #: stale on a topology swap.
        self._pairs: Any = _STALE
        #: Int encoding for this node's fault-free default-named timer.
        self._tick_event = -1 - node

    def hardware_now(self) -> float:
        cursor = self._logical._cursor
        t = self._sim.now
        return cursor._last_h if t == cursor._last_t else cursor.value(t)

    def logical_now(self) -> float:
        lc = self._logical
        cursor = lc._cursor
        t = self._sim.now
        h = cursor._last_h if t == cursor._last_t else cursor.value(t)
        return lc._values[-1] + lc._mults[-1] * (h - lc._h_seg)

    def jump_logical_to(self, target: float) -> float:
        # ``_CursorLogicalClock.jump_to`` and ``_append_segment``
        # flattened into the call site (the hottest path of gossip
        # algorithms) — statement for statement the same floats and the
        # same segment bookkeeping, ending with the JUMP trace row.
        sim = self._sim
        lc = self._logical
        t = sim.now
        cursor = lc._cursor
        h = cursor._last_h if t == cursor._last_t else cursor.value(t)
        values = lc._values
        mults = lc._mults
        mult = mults[-1]
        current = values[-1] + mult * (h - lc._h_seg)
        if target <= current + TIME_EPS:
            return 0.0
        amount = target - current
        value = current + amount
        times = lc._times
        last = times[-1]
        if t < last - TIME_EPS:
            raise ValidityError(
                f"clock action at t={t} precedes previous action at {last}"
            )
        if abs(t - last) <= TIME_EPS:
            values[-1] = value
            mults[-1] = mult
            times[-1] = min(last, t)
        else:
            times.append(t)
            values.append(value)
            mults.append(mult)
        seg = times[-1]
        lc._h_seg = cursor._last_h if seg == cursor._last_t else cursor.value(seg)
        lc._total_jump += amount
        if sim._rows is not None:
            hw = cursor.value(t)
            sim._rows.append(
                (
                    t,
                    self.node,
                    hw,
                    values[-1] + mults[-1] * (hw - lc._h_seg),
                    JUMP,
                    round(amount, 9),
                )
            )
        return amount

    def set_logical_multiplier(self, multiplier: float) -> None:
        lc = self._logical
        if abs(multiplier - lc.multiplier) <= 1e-12:
            return
        sim = self._sim
        lc.set_multiplier(sim.now, multiplier)
        if sim._rows is not None:
            hw = lc._cursor.value(sim.now)
            sim._rows.append(
                (
                    sim.now,
                    self.node,
                    hw,
                    lc._values[-1] + lc._mults[-1] * (hw - lc._h_seg),
                    RATE,
                    round(multiplier, 9),
                )
            )

    def broadcast(self, payload: Any) -> None:
        # The sparse-neighborhood fast path of the engine's
        # ``broadcast_message``, inlined on the API's cached refs; the
        # general cases (RNG/fault fallback, dense vectorized batch)
        # delegate to the engine.  Identical floats and orderings
        # either way — see ``BatchedEngine.broadcast_message``.
        sim = self._sim
        pairs = self._pairs
        if pairs is _STALE:
            if sim._bcast_hook is None:
                pairs = None
            else:
                pairs = sim._bcast_cache.get(self.node)
                if pairs is None:
                    pairs = sim._build_broadcast(self.node)
            self._pairs = pairs
        if pairs is None or len(pairs) >= _DENSE_FANOUT:
            sim.broadcast_message(self.node, payload)
            return
        now = sim.now
        node = self.node
        rows = sim._rows
        if rows is not None:
            lc = self._logical
            hw = lc._cursor.value(now)
            logical = lc._values[-1] + lc._mults[-1] * (hw - lc._h_seg)
        msgs = sim._msgs
        idx = len(msgs)
        seq = sim._msg_counter
        pend_times = self._pend_times
        pend_events = self._pend_events
        queue = self._queue
        pend_min = queue._pend_min
        for dest, delay in pairs:
            if rows is not None:
                rows.append((now, node, hw, logical, SEND, (dest, payload)))
            at = now + delay
            pend_times.append(at)
            pend_events.append(idx)
            if at < pend_min:
                pend_min = at
            msgs.append((seq, node, dest, payload, now, delay))
            seq += 1
            idx += 1
        queue._pend_min = pend_min
        sim._msg_counter = seq

    def set_timer(self, delta_hardware: float, name: str = "tick") -> None:
        # Engine ``set_timer`` unrolled: the cursor replaces the
        # ``time_at(value_at(now) + delta)`` bisects, and the event goes
        # straight onto the queue's pending batch (``fire_at >= now``,
        # so the push guard cannot fire).
        if delta_hardware <= 0:
            raise SimulationError(
                f"timer delta must be positive, got {delta_hardware}"
            )
        cursor = self._logical._cursor
        t = self._sim.now
        h = cursor._last_h if t == cursor._last_t else cursor.value(t)
        fire_at = cursor.invert(h + delta_hardware)
        faults = self._faults
        if faults is None:
            sim = self._sim
            fast = sim._fast_timer_name
            if fast is None:
                sim._fast_timer_name = fast = name
            if name == fast:
                event: Any = self._tick_event
            else:
                event = (_TIMER, self.node, name, 0)
        else:
            event = (_TIMER, self.node, name, faults.epoch(self.node))
        self._pend_times.append(fire_at)
        self._pend_events.append(event)
        queue = self._queue
        if fire_at < queue._pend_min:
            queue._pend_min = fire_at


class BatchedEngine:
    """One batched execution, built from a prepared :class:`Simulator`.

    The :class:`~repro.sim.simulator.Simulator` constructor does all the
    validation and fault-plan promotion; this engine takes over its
    hardware clocks, fault controller, delay policy and RNGs (all still
    unused at that point), rebuilds the logical clocks and node APIs on
    cursor-backed fast paths, and runs the event loop on a
    :class:`~repro.sim.events.BatchEventQueue`.
    """

    def __init__(self, sim):
        self.config = sim.config
        self.topology = sim.topology
        self.delay_policy = sim.delay_policy
        self._dynamic = sim._dynamic
        self._faults = sim._faults
        self._delay_rng = sim._delay_rng
        self._processes = sim._processes
        self._hardware = sim._hardware
        self._topology_timeline: list[tuple[float, Any]] = [(0.0, sim.topology)]
        self._queue = BatchEventQueue()
        self.now = 0.0
        self._msg_counter = 0
        self._timer_generation = 0
        #: The one timer name that gets the bare-int fast encoding in
        #: fault-free runs (periodic algorithms use a single name for
        #: their gossip tick); interned from the first timer set.
        self._fast_timer_name: str | None = None

        #: Columnar trace rows (``None`` when traces are disabled — then
        #: the engine also skips the clock reads the rows would record).
        self._rows: list[tuple] | None = [] if sim.config.record_trace else None
        #: Columnar message store, one
        #: ``(seq, sender, receiver, payload, send_time, delay)`` row
        #: per network copy; Message objects materialize at the end.
        self._msgs: list[tuple] = []

        self._cursors: dict[int, _ScheduleCursor] = {}
        self._logical: dict[int, _CursorLogicalClock] = {}
        self._api: dict[int, _FastNodeAPI] = {}
        for node in self.topology.nodes:
            hw = self._hardware[node]
            cursor = _ScheduleCursor(hw.schedule)
            self._cursors[node] = cursor
            self._logical[node] = _CursorLogicalClock(hw, cursor)
            # The scalar simulator seeded one RNG per node before any
            # draw; adopting those instances keeps the stream identical.
            self._api[node] = _FastNodeAPI(
                self, node, self._logical[node], sim._api[node].rng
            )

        #: node -> validated [(neighbor, delay), ...] for the current
        #: topology, when the policy declares distance-only delays and
        #: no fault machinery is active.  Invalidated on rewiring.
        self._bcast_hook = (
            None
            if self._faults is not None
            else getattr(self.delay_policy, "broadcast_delays", None)
        )
        self._bcast_cache: dict[int, list[tuple[int, float]]] = {}

    # ------------------------------------------------------------------
    # services used by the node API (mirror Simulator's surface)

    def record_row(
        self,
        real_time: float,
        node: int,
        hardware: float,
        logical: float,
        kind: str,
        detail: Any = None,
    ) -> None:
        if self._rows is not None:
            self._rows.append((real_time, node, hardware, logical, kind, detail))

    def record(self, event: TraceEvent) -> None:
        """Scalar-style recording, for API paths that build full events."""
        if self._rows is not None:
            self._rows.append(
                (
                    event.real_time,
                    event.node,
                    event.hardware,
                    event.logical,
                    event.kind,
                    event.detail,
                )
            )

    def send_message(self, sender: int, receiver: int, payload: Any) -> None:
        """The general (fault-aware, arbitrary-policy) send path.

        Step for step the scalar ``Simulator.send_message``: same RNG
        draw order, same validation, same trace record — only the
        clock reads and stores are batched-engine fast paths.
        """
        if sender == receiver:
            raise SimulationError(f"node {sender} tried to message itself")
        faults = self._faults
        if faults is not None and faults.node_down(sender):
            return
        distance = self.topology.distance(sender, receiver)
        raw = self.delay_policy.delay(
            sender, receiver, self.now, distance, self._msg_counter, self._delay_rng
        )
        seq = self._msg_counter
        self._msg_counter = seq + 1
        if self._rows is not None:
            lc = self._logical[sender]
            hw = lc._cursor.value(self.now)
            self._rows.append(
                (
                    self.now,
                    sender,
                    hw,
                    lc._values[-1] + lc._mults[-1] * (hw - lc._h_seg),
                    SEND,
                    (receiver, payload),
                )
            )
        if raw == float("inf"):
            return
        delay = validate_delay(raw, distance)
        delays = [delay]
        if faults is not None:
            delays = faults.outbound_delays(
                sender, receiver, self.now, distance, delay
            )
        for chosen in delays:
            chosen = validate_delay(chosen, distance)
            self._queue.push(self.now + chosen, len(self._msgs))
            self._msgs.append((seq, sender, receiver, payload, self.now, chosen))

    def _build_broadcast(self, node: int) -> list[tuple[int, float]]:
        """Validate one node's per-neighbor delays, once per topology."""
        neighbors = self.topology.neighbors(node)
        distances = [self.topology.distance(node, dest) for dest in neighbors]
        raws = self._bcast_hook(node, neighbors, distances)
        pairs = [
            (dest, validate_delay(raw, dist))
            for dest, raw, dist in zip(neighbors, raws, distances)
        ]
        self._bcast_cache[node] = pairs
        return pairs

    def broadcast_message(self, node: int, payload: Any) -> None:
        """One gossip broadcast: every neighbor, batch-scheduled.

        Only distance-dependent deterministic policies (those with a
        ``broadcast_delays`` hook) take this path, and only in
        fault-free runs — anything touching an RNG or the fault
        controller falls back to the per-send path so draw order stays
        identical to the scalar engine.  The sender's clock readings are
        computed once for the whole broadcast: the scalar engine's
        per-send reads are pure, so each would return the same floats.
        """
        if self._bcast_hook is None:
            for dest in self.topology.neighbors(node):
                self.send_message(node, dest, payload)
            return
        pairs = self._bcast_cache.get(node)
        if pairs is None:
            pairs = self._build_broadcast(node)
        if not pairs:
            return
        now = self.now
        rows = self._rows
        if rows is not None:
            lc = self._logical[node]
            hw = lc._cursor.value(now)
            logical = lc._values[-1] + lc._mults[-1] * (hw - lc._h_seg)
        seq = self._msg_counter
        msgs = self._msgs
        idx = len(msgs)
        if len(pairs) >= _DENSE_FANOUT:
            # Dense neighborhood: one vectorized queue insert for the
            # whole epoch of deliveries.
            events = []
            for dest, delay in pairs:
                if rows is not None:
                    rows.append((now, node, hw, logical, SEND, (dest, payload)))
                msgs.append((seq, node, dest, payload, now, delay))
                events.append(idx)
                seq += 1
                idx += 1
            delays = np.fromiter(
                (pair[1] for pair in pairs), dtype=float, count=len(pairs)
            )
            self._queue.push_batch(now + delays, events)
        else:
            # Sparse neighborhood: append straight onto the queue's
            # pending batch.  The delivery time is ``now + delay`` with
            # ``delay >= 0``, so the not-in-the-popped-past guard that
            # ``push`` would run cannot fire.
            queue = self._queue
            pend_times = queue._pend_times
            pend_events = queue._pend_events
            pend_min = queue._pend_min
            for dest, delay in pairs:
                if rows is not None:
                    rows.append((now, node, hw, logical, SEND, (dest, payload)))
                at = now + delay
                pend_times.append(at)
                pend_events.append(idx)
                if at < pend_min:
                    pend_min = at
                msgs.append((seq, node, dest, payload, now, delay))
                seq += 1
                idx += 1
            queue._pend_min = pend_min
        self._msg_counter = seq

    def set_timer(self, node: int, delta_hardware: float, name: str) -> None:
        if delta_hardware <= 0:
            raise SimulationError(f"timer delta must be positive, got {delta_hardware}")
        cursor = self._cursors[node]
        fire_at = cursor.invert(cursor.value(self.now) + delta_hardware)
        self._timer_generation += 1
        epoch = 0 if self._faults is None else self._faults.epoch(node)
        self._queue.push(fire_at, (_TIMER, node, name, epoch))

    # ------------------------------------------------------------------
    # the event loop

    def run(self) -> Execution:
        duration = self.config.duration
        queue = self._queue

        if self._dynamic is not None:
            for at, topology in self._dynamic.snapshots[1:]:
                if at <= duration + TIME_EPS:
                    queue.push(at, (_TOPOLOGY, topology))

        if self._faults is not None:
            def push_fault(time: float, event) -> None:
                kind = _CRASH if isinstance(event, CrashNode) else _RECOVER
                queue.push(time, (kind, event.node))

            self._faults.schedule(push_fault)

        rows = self._rows
        for node in self.topology.nodes:
            if rows is not None:
                rows.append(
                    (0.0, node, 0.0, self._logical[node].read(0.0), START, None)
                )
        for node in self.topology.nodes:
            if self._faults is not None and self._faults.node_down(node):
                continue
            self._processes[node].on_start(self._api[node])

        # The drain loop — ``BatchEventQueue.pop_due`` unrolled against
        # the queue's internals, with the two hot event kinds
        # (deliveries and timer firings) handled inline: the per-event
        # method-call and TraceEvent overhead is exactly what this
        # engine exists to remove.  Rare kinds dispatch to methods.
        # The inlined clock reads are ``_CursorLogicalClock.read``
        # expanded with the hardware reading shared between the row's
        # ``hardware`` and ``logical`` fields — bitwise the value the
        # scalar engine computes twice over.
        limit = duration + TIME_EPS
        faults = self._faults
        processes = self._processes
        apis = self._api
        logical = self._logical
        msgs = self._msgs
        # Local drain state.  ``_merge`` swaps the spine lists in place,
        # so the list bindings survive merges; the cursor lives in ``k``
        # and is written back around each merge and at exit (no other
        # queue entry point runs during the drain — engine pushes only
        # append to the pending batch).
        pend_times = queue._pend_times
        spine_times = queue._spine_times
        spine_events = queue._spine_events
        k = queue._cursor
        n_spine = len(spine_times)
        time = 0.0
        if rows is None and faults is None:
            # The at-scale configuration (no trace, no fault plan) gets
            # its own copy of the loop with the per-event ``rows``/
            # ``faults`` tests compiled out.  Crash/recover events
            # cannot exist here; topology swaps still can.
            fast_name = None
            while True:
                if pend_times and (
                    k >= n_spine or queue._pend_min < spine_times[k]
                ):
                    queue._cursor = k
                    queue._merge()
                    k = 0
                    n_spine = len(spine_times)
                if k >= n_spine:
                    break
                time = spine_times[k]
                if time > limit:
                    break
                event = spine_events[k]
                k += 1
                self.now = time
                if type(event) is int:
                    if event >= 0:
                        msg = msgs[event]
                        receiver = msg[2]
                        processes[receiver].on_message(
                            apis[receiver], msg[1], msg[3]
                        )
                    else:
                        node = -1 - event
                        if fast_name is None:
                            fast_name = self._fast_timer_name
                        processes[node].on_timer(apis[node], fast_name)
                    continue
                kind = event[0]
                if kind == _TIMER:
                    processes[event[1]].on_timer(apis[event[1]], event[2])
                elif kind == _TOPOLOGY:
                    self._retopologize(event[1])
                else:  # pragma: no cover - queue only ever holds these
                    raise SimulationError(f"unknown event kind {kind!r}")
            queue._cursor = k
            queue._last_popped = time
            self.now = duration
            return self._build_execution()
        while True:
            if pend_times and (k >= n_spine or queue._pend_min < spine_times[k]):
                queue._cursor = k
                queue._merge()
                k = 0
                n_spine = len(spine_times)
            if k >= n_spine:
                break
            time = spine_times[k]
            if time > limit:
                break
            event = spine_events[k]
            k += 1
            self.now = time
            # The two hot kinds are encoded as plain ints (no per-event
            # tuple): a delivery is its message-store index (>= 0), a
            # fault-free default-named timer is ``-1 - node``.  Named or
            # fault-epoch timers and the rare kinds stay tuples.
            if type(event) is int:
                if event >= 0:
                    msg = msgs[event]
                    receiver = msg[2]
                    if faults is not None and faults.delivery_suppressed_fields(
                        msg[1], receiver, msg[4], time
                    ):
                        continue
                    if rows is not None:
                        lc = logical[receiver]
                        hw = lc._cursor.value(time)
                        rows.append(
                            (
                                time,
                                receiver,
                                hw,
                                lc._values[-1] + lc._mults[-1] * (hw - lc._h_seg),
                                RECEIVE,
                                (msg[1], msg[3]),
                            )
                        )
                    processes[receiver].on_message(apis[receiver], msg[1], msg[3])
                else:
                    # Only scheduled when no fault controller exists, so
                    # there is no cancellation check to run.  The name is
                    # the engine-interned fast timer name (read lazily —
                    # it is set by the first ``set_timer`` call, which
                    # can happen after the drain starts).
                    node = -1 - event
                    name = self._fast_timer_name
                    if rows is not None:
                        lc = logical[node]
                        hw = lc._cursor.value(time)
                        rows.append(
                            (
                                time,
                                node,
                                hw,
                                lc._values[-1] + lc._mults[-1] * (hw - lc._h_seg),
                                TIMER,
                                name,
                            )
                        )
                    processes[node].on_timer(apis[node], name)
                continue
            kind = event[0]
            if kind == _TIMER:
                node = event[1]
                if faults is not None and faults.timer_cancelled(node, event[3]):
                    continue
                if rows is not None:
                    lc = logical[node]
                    hw = lc._cursor.value(time)
                    rows.append(
                        (
                            time,
                            node,
                            hw,
                            lc._values[-1] + lc._mults[-1] * (hw - lc._h_seg),
                            TIMER,
                            event[2],
                        )
                    )
                processes[node].on_timer(apis[node], event[2])
            elif kind == _CRASH:
                self._crash(event[1])
            elif kind == _RECOVER:
                self._recover(event[1])
            elif kind == _TOPOLOGY:
                self._retopologize(event[1])
            else:  # pragma: no cover - queue only ever holds these kinds
                raise SimulationError(f"unknown event kind {kind!r}")
        queue._cursor = k
        queue._last_popped = time
        self.now = duration
        return self._build_execution()

    # ------------------------------------------------------------------
    # cold event handlers (identical observable semantics to Simulator's)

    def _crash(self, node: int) -> None:
        self._faults.on_crash(node)
        self.record_row(
            self.now,
            node,
            self._cursors[node].value(self.now),
            self._logical[node].read(self.now),
            CRASH,
            None,
        )

    def _recover(self, node: int) -> None:
        self._faults.on_recover(node)
        self.record_row(
            self.now,
            node,
            self._cursors[node].value(self.now),
            self._logical[node].read(self.now),
            RECOVER,
            None,
        )
        self._processes[node].on_recover(self._api[node])

    def _retopologize(self, topology) -> None:
        self.topology = topology
        self._topology_timeline.append((self.now, topology))
        self._bcast_cache = {}
        for api in self._api.values():
            api._pairs = _STALE
        self.record_row(self.now, -1, 0.0, 0.0, TOPOLOGY, topology.name)

    # ------------------------------------------------------------------

    def _build_execution(self) -> Execution:
        # Materialize the columnar message store.  Message is a frozen
        # dataclass, whose generated __init__ pays one object.__setattr__
        # per field; filling the instance dict directly builds identical
        # instances (same fields, same __eq__/__hash__/repr) at a
        # fraction of the cost for runs with 10^5+ messages.
        new = Message.__new__
        set_dict = object.__setattr__
        msgs = self._msgs
        messages = [new(Message) for _ in msgs]
        for m, (seq, sender, receiver, payload, send_time, delay) in zip(
            messages, msgs
        ):
            set_dict(
                m,
                "__dict__",
                {
                    "seq": seq,
                    "sender": sender,
                    "receiver": receiver,
                    "payload": payload,
                    "send_time": send_time,
                    "delay": delay,
                },
            )
        return Execution(
            topology=self._topology_timeline[0][1],
            duration=self.config.duration,
            rho=self.config.rho,
            hardware={n: self._hardware[n] for n in self.topology.nodes},
            logical={n: self._logical[n] for n in self.topology.nodes},
            trace=ColumnarTrace(self._rows if self._rows is not None else []),
            messages=messages,
            fault_stats=(
                None if self._faults is None else dict(self._faults.stats)
            ),
            topology_timeline=(
                None if self._dynamic is None else tuple(self._topology_timeline)
            ),
        )
