"""Execution replay: freeze an execution's randomness and re-run it.

A finished :class:`~repro.sim.execution.Execution` records every
message's delay keyed by global send order.  Replaying the run with a
:class:`~repro.sim.messages.SequenceDelay` scripted from those records
must reproduce the execution exactly — a strong end-to-end check of the
simulator's determinism contract, and a practical tool:

* turn a run under a *random* delay policy into a reproducible artifact
  (e.g. to bisect an algorithm regression on the exact same network
  behavior);
* verify that an algorithm change is observationally equivalent on a
  frozen schedule.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.algorithms.base import SyncAlgorithm
from repro.errors import SimulationError
from repro.gcs.indistinguishability import assert_indistinguishable_prefix
from repro.sim.execution import Execution
from repro.sim.messages import SequenceDelay
from repro.sim.rates import PiecewiseConstantRate
from repro.sim.simulator import SimConfig, run_simulation
from repro.topology.base import Topology

__all__ = ["delay_script", "replay", "verify_replay"]


def delay_script(execution: Execution) -> dict[int, float]:
    """The execution's delays keyed by message sequence number."""
    return {m.seq: m.delay for m in execution.messages}


def replay(
    execution: Execution,
    algorithm: SyncAlgorithm,
    *,
    rate_schedules: Optional[Mapping[int, PiecewiseConstantRate]] = None,
    topology: Optional[Topology] = None,
    seed: int = 0,
    engine: str = "scalar",
) -> Execution:
    """Re-run ``algorithm`` against the frozen delays of ``execution``.

    ``rate_schedules`` must be the schedules the original run used (the
    execution's hardware clocks carry them, so they default to those).
    The replayed algorithm must send messages in the same global order
    for the script to apply — replaying the *same* deterministic
    algorithm always does.

    ``execution`` may come from either simulation engine — an
    :class:`Execution` records delays the same way under both — and
    ``engine`` picks which engine performs the replay.  The engines'
    byte-identity contract (``tests/test_engine_equivalence.py``) makes
    the four combinations interchangeable; the round-trip tests in
    ``tests/test_replay.py`` pin the cross pairs.
    """
    topo = topology or execution.topology
    rates = (
        dict(rate_schedules)
        if rate_schedules is not None
        else {n: hw.schedule for n, hw in execution.hardware.items()}
    )
    script = SequenceDelay(delay_script(execution))
    return run_simulation(
        topo,
        algorithm.processes(topo),
        SimConfig(
            duration=execution.duration,
            rho=execution.rho,
            seed=seed,
            engine=engine,
        ),
        rate_schedules=rates,
        delay_policy=script,
    )


def verify_replay(
    execution: Execution,
    algorithm: SyncAlgorithm,
    *,
    seed: int = 0,
    engine: str = "scalar",
) -> Execution:
    """Replay and assert observational equivalence; returns the replay.

    Raises :class:`~repro.errors.IndistinguishabilityError` if any node
    could tell the runs apart, and :class:`SimulationError` if the
    replay sent a different number of messages (a cheap first-line
    check before the per-node comparison).
    """
    replayed = replay(execution, algorithm, seed=seed, engine=engine)
    if len(replayed.messages) != len(execution.messages):
        raise SimulationError(
            f"replay sent {len(replayed.messages)} messages, original "
            f"sent {len(execution.messages)}"
        )
    assert_indistinguishable_prefix(execution, replayed)
    return replayed
