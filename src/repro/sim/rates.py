"""Piecewise-constant hardware clock rate schedules.

The paper defines a hardware clock by its rate: ``H_i(t) = integral_0^t
h_i(r) dr`` (Section 3).  All adversarial constructions in the paper use
piecewise-constant rates (rate 1 baseline, rate ``gamma`` inside a window),
so a piecewise-constant schedule with *exact* integration and inversion is
the right substrate: no numerical integration error can leak into an
indistinguishability argument.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro._constants import TIME_EPS
from repro.errors import ScheduleError

__all__ = [
    "RateSegment",
    "PiecewiseConstantRate",
    "constant_schedules",
    "random_walk_schedule",
]


@dataclass(frozen=True)
class RateSegment:
    """One constant-rate piece: ``rate`` on ``[start, end)``.

    ``end`` is ``math.inf`` for the final piece.
    """

    start: float
    end: float
    rate: float


@dataclass(frozen=True)
class PiecewiseConstantRate:
    """A piecewise-constant, strictly positive rate function of real time.

    The schedule is defined for all ``t >= 0``; the last rate extends to
    infinity.  Instances are immutable; editing operations return new
    schedules.

    Parameters
    ----------
    starts:
        Segment start times; must begin at ``0.0`` and be strictly
        increasing.
    rates:
        Rate on ``[starts[k], starts[k + 1])``; must be strictly positive
        (the model's clocks never stop, Assumption 1 with ``rho < 1``).
    """

    starts: tuple[float, ...] = (0.0,)
    rates: tuple[float, ...] = (1.0,)
    _cumulative: tuple[float, ...] = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if len(self.starts) != len(self.rates):
            raise ScheduleError("starts and rates must have equal length")
        if not self.starts or abs(self.starts[0]) > TIME_EPS:
            raise ScheduleError("schedule must start at t = 0")
        # A within-tolerance anchor (e.g. an accumulated 1e-12 from
        # upstream float arithmetic) is accepted but normalized to the
        # exact origin: segment lookup bisects over ``starts`` and
        # relies on the first breakpoint being literally 0.0, so a
        # query at t = 0 must never land before the first segment.
        if self.starts[0] != 0.0:  # repro: allow[FLT001] exact-origin invariant
            object.__setattr__(self, "starts", (0.0, *tuple(self.starts)[1:]))
        for a, b in zip(self.starts, self.starts[1:]):
            if b <= a:
                raise ScheduleError(f"breakpoints must increase: {a} !< {b}")
        for r in self.rates:
            if r <= 0.0:
                raise ScheduleError(f"rates must be positive, got {r}")
        cumulative = [0.0]
        for k in range(1, len(self.starts)):
            width = self.starts[k] - self.starts[k - 1]
            cumulative.append(cumulative[-1] + width * self.rates[k - 1])
        object.__setattr__(self, "_cumulative", tuple(cumulative))

    # ------------------------------------------------------------------
    # constructors

    @classmethod
    def constant(cls, rate: float = 1.0) -> "PiecewiseConstantRate":
        """A schedule running at ``rate`` forever."""
        return cls(starts=(0.0,), rates=(rate,))

    @classmethod
    def from_segments(
        cls, segments: Iterable[tuple[float, float]]
    ) -> "PiecewiseConstantRate":
        """Build from ``(start, rate)`` pairs (must start at 0)."""
        pairs = sorted(segments)
        return cls(
            starts=tuple(start for start, _ in pairs),
            rates=tuple(rate for _, rate in pairs),
        ).normalized()

    # ------------------------------------------------------------------
    # queries

    def _index_at(self, t: float) -> int:
        if t < 0.0:
            raise ScheduleError(f"time must be nonnegative, got {t}")
        return bisect_right(self.starts, t) - 1

    def rate_at(self, t: float) -> float:
        """The rate in effect at real time ``t`` (right-continuous)."""
        return self.rates[self._index_at(t)]

    def value_at(self, t: float) -> float:
        """The hardware clock reading ``H(t)`` (exact integral of the rate)."""
        k = self._index_at(t)
        return self._cumulative[k] + (t - self.starts[k]) * self.rates[k]

    def _arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Cached ``(starts, rates, cumulative)`` as numpy arrays."""
        cached = self.__dict__.get("_np_cache")
        if cached is None:
            cached = (
                np.asarray(self.starts, dtype=float),
                np.asarray(self.rates, dtype=float),
                np.asarray(self._cumulative, dtype=float),
            )
            object.__setattr__(self, "_np_cache", cached)
        return cached

    def values_at(self, times: Sequence[float] | np.ndarray) -> np.ndarray:
        """``H(t)`` for a whole array of times at once.

        One ``searchsorted`` over the segment boundaries replaces a
        ``bisect_right`` per sample; element-for-element the arithmetic
        is identical to :meth:`value_at`, so both paths agree bitwise.
        """
        t = np.asarray(times, dtype=float)
        if t.size and float(t.min()) < 0.0:
            raise ScheduleError(f"time must be nonnegative, got {float(t.min())}")
        starts, rates, cumulative = self._arrays()
        k = np.searchsorted(starts, t, side="right") - 1
        return cumulative[k] + (t - starts[k]) * rates[k]

    def invert(self, value: float) -> float:
        """The real time ``t`` at which ``H(t) == value``.

        Well defined because rates are strictly positive, so ``H`` is
        strictly increasing.
        """
        if value < 0.0:
            raise ScheduleError(f"clock values are nonnegative, got {value}")
        k = bisect_right(self._cumulative, value) - 1
        return self.starts[k] + (value - self._cumulative[k]) / self.rates[k]

    def segments(self) -> Iterator[RateSegment]:
        """Iterate the schedule's constant pieces."""
        for k, (start, rate) in enumerate(zip(self.starts, self.rates)):
            end = self.starts[k + 1] if k + 1 < len(self.starts) else float("inf")
            yield RateSegment(start, end, rate)

    def breakpoints_in(self, a: float, b: float) -> list[float]:
        """Breakpoints strictly inside the open interval ``(a, b)``."""
        return [t for t in self.starts if a < t < b]

    def min_rate(self, a: float = 0.0, b: float = float("inf")) -> float:
        """Minimum rate over ``[a, b]``."""
        return min(seg.rate for seg in self.segments() if seg.end > a and seg.start < b)

    def max_rate(self, a: float = 0.0, b: float = float("inf")) -> float:
        """Maximum rate over ``[a, b]``."""
        return max(seg.rate for seg in self.segments() if seg.end > a and seg.start < b)

    def within_bounds(self, lo: float, hi: float) -> bool:
        """Whether every rate lies inside ``[lo, hi]``."""
        return all(lo <= r <= hi for r in self.rates)

    # ------------------------------------------------------------------
    # editing (returns new schedules)

    def with_rate(self, a: float, b: float, rate: float) -> "PiecewiseConstantRate":
        """Replace the rate on ``[a, b)`` with ``rate``.

        The schedule outside ``[a, b)`` is unchanged.  Used by the Add Skew
        construction to install the ``gamma`` windows of Figure 1.
        """
        if b <= a:
            raise ScheduleError(f"empty window [{a}, {b})")
        if a < 0.0:
            raise ScheduleError("window must start at t >= 0")
        starts: list[float] = []
        rates: list[float] = []
        for seg in self.segments():
            # Portion of this segment before the window.
            if seg.start < a:
                starts.append(seg.start)
                rates.append(seg.rate)
        starts.append(a)
        rates.append(rate)
        resume_rate = self.rate_at(b)
        starts.append(b)
        rates.append(resume_rate)
        for seg in self.segments():
            if seg.start > b:
                starts.append(seg.start)
                rates.append(seg.rate)
        return PiecewiseConstantRate(tuple(starts), tuple(rates)).normalized()

    def normalized(self) -> "PiecewiseConstantRate":
        """Merge adjacent equal-rate segments and drop zero-width ones."""
        starts: list[float] = []
        rates: list[float] = []
        for start, rate in zip(self.starts, self.rates):
            if starts and abs(start - starts[-1]) <= TIME_EPS:
                # Zero-width piece: the later definition wins.
                rates[-1] = rate
                continue
            if rates and rates[-1] == rate:
                continue
            starts.append(start)
            rates.append(rate)
        return PiecewiseConstantRate(tuple(starts), tuple(rates))

    def equivalent_to(
        self, other: "PiecewiseConstantRate", *, until: float = float("inf")
    ) -> bool:
        """Whether the two schedules define the same rate function on ``[0, until)``."""
        mine = [s for s in self.normalized().segments() if s.start < until]
        theirs = [s for s in other.normalized().segments() if s.start < until]
        if len(mine) != len(theirs):
            return False
        for sa, sb in zip(mine, theirs):
            if abs(sa.start - sb.start) > TIME_EPS or sa.rate != sb.rate:
                return False
        return True


def constant_schedules(nodes: Sequence[int], rate: float = 1.0) -> dict[int, PiecewiseConstantRate]:
    """Convenience: the all-nodes-at-``rate`` schedule map used by ``alpha_0``."""
    schedule = PiecewiseConstantRate.constant(rate)
    return {node: schedule for node in nodes}


def random_walk_schedule(
    *,
    rho: float,
    horizon: float,
    interval: float,
    seed: int,
    step: float | None = None,
) -> PiecewiseConstantRate:
    """A time-varying rate: a clipped random walk inside ``[1-rho, 1+rho]``.

    Real oscillators drift with temperature and age; a rate that wanders
    within the band (changing every ``interval`` of real time, moving at
    most ``step`` per change, default ``rho/4``) models that while
    staying inside Assumption 1.  After ``horizon`` the final rate
    extends forever, keeping the schedule total.
    """
    if not 0.0 < rho < 1.0:
        raise ScheduleError(f"rho must be in (0, 1), got {rho}")
    if interval <= 0 or horizon <= 0:
        raise ScheduleError("interval and horizon must be positive")
    import random as _random

    rng = _random.Random(seed)
    step = step if step is not None else rho / 4.0
    lo, hi = 1.0 - rho, 1.0 + rho
    rate = rng.uniform(lo, hi)
    starts = [0.0]
    rates = [rate]
    t = interval
    while t < horizon:
        rate = min(max(rate + rng.uniform(-step, step), lo), hi)
        starts.append(t)
        rates.append(rate)
        t += interval
    return PiecewiseConstantRate(tuple(starts), tuple(rates)).normalized()
