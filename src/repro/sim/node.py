"""Node processes and the node-visible API.

The model grants a node exactly three powers (Section 3): read its own
hardware clock, exchange messages, and compute.  :class:`NodeAPI` is that
interface — note there is deliberately **no way to read real time** from
it.  Timers are set in *hardware* time.  Because nodes can only observe
hardware readings and messages, two executions in which those observations
match are indistinguishable, which is the principle every lower-bound
construction in :mod:`repro.gcs` executes.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Any

from repro.sim.clock import LogicalClock
from repro.sim.trace import JUMP, RATE, TraceEvent

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.simulator import Simulator

__all__ = ["Process", "NodeAPI"]


class Process:
    """Base class for node behaviors (the algorithm ``A`` of the paper).

    Subclasses override the three callbacks.  All interaction with the
    world goes through the :class:`NodeAPI` argument.
    """

    def on_start(self, api: "NodeAPI") -> None:
        """Called once at real time 0 (all nodes start together, Section 3)."""

    def on_message(self, api: "NodeAPI", sender: int, payload: Any) -> None:
        """Called when a message from ``sender`` arrives."""

    def on_timer(self, api: "NodeAPI", name: str) -> None:
        """Called when a timer set via :meth:`NodeAPI.set_timer` fires."""

    def on_recover(self, api: "NodeAPI") -> None:
        """Called when the node comes back from a crash-recovery fault.

        Only fault plans (:mod:`repro.sim.faults`) trigger this; the
        paper's reliable model never does.  Timers pending at the crash
        were cancelled, so implementations should re-arm their periodic
        machinery here and discard any state that went stale during the
        outage (e.g. dead-reckoned neighbor estimates).
        """


class NodeAPI:
    """What a node is allowed to see and do.

    Created by the simulator, one per node.  Every method either reads the
    hardware clock, manipulates the logical clock (forward jumps only), or
    sends messages / sets hardware-time timers.
    """

    def __init__(
        self,
        simulator: "Simulator",
        node: int,
        logical: LogicalClock,
        rng: random.Random,
    ):
        self._sim = simulator
        self.node = node
        self._logical = logical
        self.rng = rng

    # ------------------------------------------------------------------
    # clocks

    def hardware_now(self) -> float:
        """The node's current hardware clock reading ``H(t)``."""
        return self._logical.hardware.value_at(self._sim.now)

    def logical_now(self) -> float:
        """The node's current logical clock value ``L(t)``."""
        return self._logical.read(self._sim.now)

    def jump_logical_to(self, target: float) -> float:
        """Jump the logical clock forward to ``target`` (no-op if behind).

        Returns the jump size; jumps are recorded in the trace.
        """
        size = self._logical.jump_to(self._sim.now, target)
        if size > 0.0:
            self._sim.record(
                TraceEvent(
                    real_time=self._sim.now,
                    node=self.node,
                    hardware=self.hardware_now(),
                    logical=self.logical_now(),
                    kind=JUMP,
                    detail=round(size, 9),
                )
            )
        return size

    def jump_logical_by(self, amount: float) -> float:
        """Jump the logical clock forward by ``amount >= 0``."""
        return self.jump_logical_to(self.logical_now() + amount)

    def set_logical_multiplier(self, multiplier: float) -> None:
        """Run the logical clock at ``multiplier * h(t)`` from now on.

        The multiplier must stay at or above the validity-safe floor
        ``1 / (2 (1 - rho))`` (Requirement 1).  Rate changes are recorded
        in the trace like jumps — they are observable control actions.
        """
        if abs(multiplier - self._logical.multiplier) <= 1e-12:
            return
        self._logical.set_multiplier(self._sim.now, multiplier)
        self._sim.record(
            TraceEvent(
                real_time=self._sim.now,
                node=self.node,
                hardware=self.hardware_now(),
                logical=self.logical_now(),
                kind=RATE,
                detail=round(multiplier, 9),
            )
        )

    @property
    def logical_multiplier(self) -> float:
        """The current logical rate multiplier."""
        return self._logical.multiplier

    @property
    def min_logical_multiplier(self) -> float:
        """The validity-safe multiplier floor ``1 / (2 (1 - rho))``."""
        return self._logical.min_multiplier()

    # ------------------------------------------------------------------
    # communication

    def send(self, dest: int, payload: Any) -> None:
        """Send ``payload`` to ``dest``; the adversary picks the delay."""
        self._sim.send_message(self.node, dest, payload)

    def broadcast(self, payload: Any) -> None:
        """Send ``payload`` to every communication neighbor."""
        for dest in self.neighbors():
            self.send(dest, payload)

    def neighbors(self) -> list[int]:
        """This node's communication partners (sorted, deterministic)."""
        return self._sim.topology.neighbors(self.node)

    def distance(self, other: int) -> float:
        """The delay uncertainty ``d`` between this node and ``other``.

        Distances are part of the network description, which algorithms are
        allowed to know (the paper's algorithms are parameterized by the
        network).
        """
        return self._sim.topology.distance(self.node, other)

    # ------------------------------------------------------------------
    # timers

    def set_timer(self, delta_hardware: float, name: str = "tick") -> None:
        """Arrange ``on_timer(name)`` after ``delta_hardware`` units of
        *hardware* clock time.

        Hardware time is the only time a node can measure, so this is the
        only timer the model permits.
        """
        self._sim.set_timer(self.node, delta_hardware, name)
