"""Deterministic discrete-event queue.

Events are ordered by ``(time, sequence)``.  The sequence number is the
global insertion order, which makes the simulation fully deterministic: two
runs with the same inputs pop events in exactly the same order.  That
determinism is what lets a re-run under a warped adversary schedule
reproduce a retimed execution exactly (the executable form of the paper's
indistinguishability principle).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.errors import SimulationError

__all__ = [
    "DeliverMessage",
    "FireTimer",
    "CrashNode",
    "RecoverNode",
    "TopologyChange",
    "EventQueue",
]


@dataclass(frozen=True)
class DeliverMessage:
    """Delivery of a message to ``node`` (payload carried separately)."""

    node: int
    message: Any


@dataclass(frozen=True)
class FireTimer:
    """A node-local timer set in *hardware* time coming due.

    ``epoch`` is the node's crash epoch when the timer was set; a timer
    whose epoch is stale (the node crashed since) is cancelled.  It is
    always 0 in fault-free runs.
    """

    node: int
    name: str
    generation: int
    epoch: int = 0


@dataclass(frozen=True)
class CrashNode:
    """A scheduled crash of ``node`` (see :mod:`repro.sim.faults`)."""

    node: int


@dataclass(frozen=True)
class RecoverNode:
    """A scheduled recovery of ``node`` (see :mod:`repro.sim.faults`)."""

    node: int


@dataclass(frozen=True)
class TopologyChange:
    """An atomic swap of the network's distance/adjacency tables.

    Scheduled from a :class:`~repro.topology.dynamic.DynamicTopology`'s
    change-points before the event loop starts, so swaps take the lowest
    sequence numbers at their instant and pop before same-instant
    deliveries or timers: everything at time ``t`` already sees the new
    network.  Messages in flight across a swap keep the delay they were
    assigned at send time (the wire outlives the rewiring).
    """

    topology: Any


@dataclass(order=True)
class _Entry:
    time: float
    seq: int
    event: Any = field(compare=False)


class EventQueue:
    """A heap of timestamped events with deterministic tie-breaking."""

    def __init__(self) -> None:
        self._heap: list[_Entry] = []
        self._counter = itertools.count()
        self._last_popped = float("-inf")

    def push(self, time: float, event: Any) -> None:
        """Schedule ``event`` at ``time`` (must not be in the popped past)."""
        if time < self._last_popped - 1e-9:
            raise SimulationError(
                f"event scheduled at {time} before current time {self._last_popped}"
            )
        heapq.heappush(self._heap, _Entry(time, next(self._counter), event))

    def pop(self) -> tuple[float, Any]:
        """Remove and return the earliest ``(time, event)``."""
        if not self._heap:
            raise SimulationError("pop from empty event queue")
        entry = heapq.heappop(self._heap)
        self._last_popped = entry.time
        return entry.time, entry.event

    def peek_time(self) -> Optional[float]:
        """Earliest scheduled time, or ``None`` if empty."""
        return self._heap[0].time if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
