"""Deterministic discrete-event queue.

Events are ordered by ``(time, sequence)``.  The sequence number is the
global insertion order, which makes the simulation fully deterministic: two
runs with the same inputs pop events in exactly the same order.  That
determinism is what lets a re-run under a warped adversary schedule
reproduce a retimed execution exactly (the executable form of the paper's
indistinguishability principle).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np

from repro.errors import SimulationError

__all__ = [
    "DeliverMessage",
    "FireTimer",
    "CrashNode",
    "RecoverNode",
    "TopologyChange",
    "EventQueue",
    "BatchEventQueue",
]


@dataclass(frozen=True)
class DeliverMessage:
    """Delivery of a message to ``node`` (payload carried separately)."""

    node: int
    message: Any


@dataclass(frozen=True)
class FireTimer:
    """A node-local timer set in *hardware* time coming due.

    ``epoch`` is the node's crash epoch when the timer was set; a timer
    whose epoch is stale (the node crashed since) is cancelled.  It is
    always 0 in fault-free runs.
    """

    node: int
    name: str
    generation: int
    epoch: int = 0


@dataclass(frozen=True)
class CrashNode:
    """A scheduled crash of ``node`` (see :mod:`repro.sim.faults`)."""

    node: int


@dataclass(frozen=True)
class RecoverNode:
    """A scheduled recovery of ``node`` (see :mod:`repro.sim.faults`)."""

    node: int


@dataclass(frozen=True)
class TopologyChange:
    """An atomic swap of the network's distance/adjacency tables.

    Scheduled from a :class:`~repro.topology.dynamic.DynamicTopology`'s
    change-points before the event loop starts, so swaps take the lowest
    sequence numbers at their instant and pop before same-instant
    deliveries or timers: everything at time ``t`` already sees the new
    network.  Messages in flight across a swap keep the delay they were
    assigned at send time (the wire outlives the rewiring).
    """

    topology: Any


@dataclass(order=True)
class _Entry:
    time: float
    seq: int
    event: Any = field(compare=False)


class EventQueue:
    """A heap of timestamped events with deterministic tie-breaking."""

    def __init__(self) -> None:
        self._heap: list[_Entry] = []
        self._counter = itertools.count()
        self._last_popped = float("-inf")

    def push(self, time: float, event: Any) -> None:
        """Schedule ``event`` at ``time`` (must not be in the popped past)."""
        if time < self._last_popped - 1e-9:
            raise SimulationError(
                f"event scheduled at {time} before current time {self._last_popped}"
            )
        heapq.heappush(self._heap, _Entry(time, next(self._counter), event))

    def pop(self) -> tuple[float, Any]:
        """Remove and return the earliest ``(time, event)``."""
        if not self._heap:
            raise SimulationError("pop from empty event queue")
        entry = heapq.heappop(self._heap)
        self._last_popped = entry.time
        return entry.time, entry.event

    def peek_time(self) -> Optional[float]:
        """Earliest scheduled time, or ``None`` if empty."""
        return self._heap[0].time if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)


class BatchEventQueue:
    """The vectorized event queue behind the batched simulation engine.

    Same contract as :class:`EventQueue` — events pop in ``(time, seq)``
    order, where ``seq`` is global insertion order — realized as sorted
    arrays instead of a binary heap:

    * a **spine**: aligned time/event lists already in lexicographic
      ``(time, seq)`` order, drained by advancing a cursor (an O(1)
      pop, no heap rebalancing, no per-entry wrapper objects);
    * a **pending batch**: events pushed since the last merge.  Because
      insertion order is global and monotone, every pending event's seq
      exceeds every spine event's, so a pending event can only precede
      the spine head if its *time* is strictly earlier — until then
      pops come off the spine untouched.  When that happens (or the
      spine drains) the whole batch is stable-sorted by time (numpy
      ``argsort``; stability supplies the seq tie-break) and merged in
      one vectorized pass.

    Periodic-broadcast gossip schedules whole epochs of future firings
    between consecutive pops, so merges are rare and large — the
    amortized cost per event is a couple of array reads.  The
    equivalence property test (``tests/test_events.py``) drives random
    push/pop interleavings through both queues and asserts identical
    drain order.
    """

    def __init__(self) -> None:
        # The spine is kept as plain python lists (cheap scalar reads in
        # the drain loop); merges round-trip through numpy.
        self._spine_times: list[float] = []
        self._spine_events: list[Any] = []
        self._cursor = 0
        self._pend_times: list[float] = []
        self._pend_events: list[Any] = []
        self._pend_min = float("inf")
        self._last_popped = float("-inf")

    # ------------------------------------------------------------------
    # pushes

    def push(self, time: float, event: Any) -> None:
        """Schedule ``event`` at ``time`` (must not be in the popped past)."""
        if time < self._last_popped - 1e-9:
            raise SimulationError(
                f"event scheduled at {time} before current time {self._last_popped}"
            )
        self._pend_times.append(time)
        self._pend_events.append(event)
        if time < self._pend_min:
            self._pend_min = time

    def push_batch(self, times, events: list[Any]) -> None:
        """Schedule a whole batch of events at once (consecutive seqs).

        ``times`` may be any float sequence (typically a numpy array of
        vectorized receive times); ``events`` is the aligned payload
        list.  Equivalent to ``push`` called element by element.
        """
        if len(times) != len(events):
            raise SimulationError("push_batch needs aligned times and events")
        if len(times) == 0:
            return
        lo = float(np.min(times)) if isinstance(times, np.ndarray) else min(times)
        if lo < self._last_popped - 1e-9:
            raise SimulationError(
                f"event scheduled at {lo} before current time {self._last_popped}"
            )
        self._pend_times.extend(
            times.tolist() if isinstance(times, np.ndarray) else map(float, times)
        )
        self._pend_events.extend(events)
        if lo < self._pend_min:
            self._pend_min = lo

    # ------------------------------------------------------------------
    # the merge

    def _merge(self) -> None:
        """Fold the pending batch into the spine (one vectorized sort).

        Pending entries hold strictly later seqs than every spine entry
        (the counter is global and monotone), so seqs never need to be
        materialized: a *stable* sort of the batch by time realizes the
        within-batch seq tie-break, and inserting each pending event
        *after* the last equal-time spine entry (``side="right"``)
        realizes it across the batch boundary.
        """
        pend_times = np.asarray(self._pend_times, dtype=float)
        order = np.argsort(pend_times, kind="stable")
        pend_times = pend_times[order]
        # Gather with python ints (C-level map) — indexing a list with
        # numpy integers is several times slower.
        pend_events = list(map(self._pend_events.__getitem__, order.tolist()))

        rem_times = self._spine_times[self._cursor :]
        rem_events = self._spine_events[self._cursor :]
        if not rem_events:
            merged_times = pend_times.tolist()
            merged_events = pend_events
        else:
            pos = np.searchsorted(
                np.asarray(rem_times, dtype=float), pend_times, side="right"
            )
            total = len(rem_events) + len(pend_events)
            take_pending = np.zeros(total, dtype=bool)
            pend_slots = (pos + np.arange(len(pend_events))).tolist()
            take_pending[pend_slots] = True
            merged = np.empty(total, dtype=float)
            merged[take_pending] = pend_times
            merged[~take_pending] = rem_times
            merged_times = merged.tolist()
            merged_events = [None] * total
            for slot, event in zip(pend_slots, pend_events):
                merged_events[slot] = event
            rem_slots = np.nonzero(~take_pending)[0].tolist()
            for slot, event in zip(rem_slots, rem_events):
                merged_events[slot] = event
        # In-place swaps: callers (the batched engine's drain loop) hold
        # direct references to these lists, so identity must survive.
        self._spine_times[:] = merged_times
        self._spine_events[:] = merged_events
        self._cursor = 0
        self._pend_times.clear()
        self._pend_events.clear()
        self._pend_min = float("inf")

    # ------------------------------------------------------------------
    # pops

    def pop_due(self, limit: float) -> Optional[tuple[float, Any]]:
        """Pop the earliest event if its time is ``<= limit``, else ``None``.

        The engine's whole drain step — emptiness check, horizon check,
        merge-if-needed, pop — in one call.
        """
        if self._pend_times:
            k = self._cursor
            if k >= len(self._spine_events) or self._pend_min < self._spine_times[k]:
                self._merge()
        k = self._cursor
        times = self._spine_times
        if k >= len(times):
            return None
        time = times[k]
        if time > limit:
            return None
        self._cursor = k + 1
        self._last_popped = time
        return time, self._spine_events[k]

    def pop(self) -> tuple[float, Any]:
        """Remove and return the earliest ``(time, event)``."""
        item = self.pop_due(float("inf"))
        if item is None:
            raise SimulationError("pop from empty event queue")
        return item

    def peek_time(self) -> Optional[float]:
        """Earliest scheduled time, or ``None`` if empty."""
        head = (
            self._spine_times[self._cursor]
            if self._cursor < len(self._spine_events)
            else None
        )
        if self._pend_times:
            return self._pend_min if head is None else min(head, self._pend_min)
        return head

    def __len__(self) -> int:
        return (len(self._spine_events) - self._cursor) + len(self._pend_times)

    def __bool__(self) -> bool:
        return len(self) > 0
