"""Finished executions and the measurements defined on them.

An :class:`Execution` is the complete record of one run: clocks, trace,
and delivered messages.  All of the paper's quantities are queries on it:
clock skew ``L_i(t) - L_j(t)`` at any real time, the gradient profile
(max skew as a function of distance), and the model-compliance checks
(Assumption 1 drift bounds, Requirement 1 validity, the ``[0, d_ij]``
delay band, and the tighter bands the lemmas assume).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro._constants import TIME_EPS, VALIDITY_RATE, window_starts
from repro.errors import DelayBoundError, ValidityError
from repro.sim.clock import HardwareClock, LogicalClock
from repro.sim.messages import Message
from repro.sim.trace import ExecutionTrace
from repro.topology.base import Topology

__all__ = ["Execution"]


@dataclass
class Execution:
    """The result of one simulated execution ``alpha``."""

    topology: Topology
    duration: float
    rho: float
    hardware: dict[int, HardwareClock]
    logical: dict[int, LogicalClock]
    trace: ExecutionTrace
    messages: list[Message]
    #: Fault-injection counters (crashes, losses, duplicates, ...) when
    #: the run carried a non-empty fault plan; ``None`` for fault-free
    #: runs, which the paper's model — and most of this package — uses.
    fault_stats: dict | None = None
    #: Where the execution came from: ``"sim"`` for the discrete-event
    #: simulator, ``"live-<transport>"`` for :mod:`repro.rt` runs.  Every
    #: measurement defined on this class applies to both.
    source: str = "sim"
    #: The ``(time, topology)`` timeline of a dynamic-topology run
    #: (first entry at 0.0 — it equals :attr:`topology`); ``None`` for
    #: static runs.  Distance-dependent measurements
    #: (:meth:`topology_at`, :meth:`check_delay_bounds`, the
    #: :class:`~repro.analysis.field.SkewField` adjacent/gradient
    #: queries, :func:`repro.gcs.properties.check_gradient`) evaluate
    #: against the network live at each instant.
    topology_timeline: tuple[tuple[float, Topology], ...] | None = None
    #: Transport-level counters of a :mod:`repro.rt` run (aggregate
    #: ``frames_dropped``, router ``frames_routed``/``events``, worker
    #: count, ...); ``None`` for simulator runs.  Dropped frames are
    #: wire-level losses (malformed or misdirected datagrams), distinct
    #: from the *injected* losses counted in :attr:`fault_stats`.
    live_stats: dict | None = None

    # ------------------------------------------------------------------
    # topology queries

    @property
    def is_dynamic(self) -> bool:
        """Whether the network rewired at least once during the run."""
        return self.topology_timeline is not None and len(self.topology_timeline) > 1

    def topology_at(self, t: float) -> Topology:
        """The network live at real time ``t`` (:attr:`topology` if static)."""
        timeline = self.topology_timeline
        if timeline is None or len(timeline) == 1:
            return self.topology
        times = self.__dict__.get("_timeline_times")
        if times is None:
            times = [at for at, _ in timeline]
            self.__dict__["_timeline_times"] = times
        return timeline[max(bisect.bisect_right(times, t) - 1, 0)][1]

    # ------------------------------------------------------------------
    # clock queries

    def hardware_value(self, node: int, t: float) -> float:
        """``H_node(t)``."""
        return self.hardware[node].value_at(t)

    def logical_value(self, node: int, t: float) -> float:
        """``L_node(t)``."""
        return self.logical[node].value_at(t)

    def skew(self, i: int, j: int, t: float) -> float:
        """``L_i(t) - L_j(t)`` (signed)."""
        return self.logical_value(i, t) - self.logical_value(j, t)

    def skew_matrix(self, t: float) -> np.ndarray:
        """Signed skew between every ordered pair at time ``t``."""
        values = np.array([self.logical_value(n, t) for n in self.topology.nodes])
        return values[:, None] - values[None, :]

    def logical_snapshot(self, t: float) -> dict[int, float]:
        """All logical values at time ``t``."""
        return {n: self.logical_value(n, t) for n in self.topology.nodes}

    def logical_matrix(self, times: Sequence[float] | np.ndarray) -> np.ndarray:
        """The ``n x T`` matrix of logical values: row ``i`` is ``L_i``
        over ``times``.

        One batched :meth:`~repro.sim.clock.LogicalClock.values_at` call
        per node replaces a ``value_at`` bisect per (node, time); this is
        the trajectory matrix every :class:`~repro.analysis.field.SkewField`
        query is answered from.
        """
        t = np.asarray(times, dtype=float)
        return np.vstack(
            [self.logical[n].values_at(t) for n in self.topology.nodes]
        )

    # ------------------------------------------------------------------
    # skew summaries

    def max_skew(self, t: float) -> float:
        """Largest absolute skew over all pairs at time ``t``."""
        return float(np.abs(self.skew_matrix(t)).max())

    def max_skew_pair(self, t: float) -> tuple[int, int, float]:
        """The pair achieving the largest absolute skew at ``t``."""
        m = np.abs(self.skew_matrix(t))
        i, j = np.unravel_index(int(m.argmax()), m.shape)
        return int(i), int(j), float(m[i, j])

    def max_adjacent_skew(self, t: float) -> float:
        """Largest absolute skew over minimum-distance pairs at ``t``.

        This is the quantity Theorem 8.1 bounds from below: skew between
        nodes at distance 1.  On dynamic runs the minimum-distance pairs
        are those of the network live at ``t``.
        """
        return max(
            abs(self.skew(i, j, t)) for i, j in self.topology_at(t).adjacent_pairs()
        )

    def peak_adjacent_skew(self, times: Iterable[float]) -> tuple[float, float]:
        """``(time, skew)`` of the largest adjacent skew over sample times.

        Raises :class:`ValueError` on an empty ``times`` iterable — the
        old behaviour silently returned ``(0.0, -inf)``, which poisoned
        every downstream max/mean it flowed into.
        """
        times = list(times)
        if not times:
            raise ValueError("peak_adjacent_skew needs at least one sample time")
        from repro.analysis.field import SkewField

        return SkewField(self, times).peak_adjacent_skew()

    def sample_times(self, step: float = 1.0) -> list[float]:
        """Evenly spaced sample times covering the execution.

        The closing ``duration`` sample appears exactly once:
        ``np.arange`` can emit a final grid point within float error of
        ``duration`` (e.g. ``duration = 3 * 0.1``, ``step = 0.1``), which
        used to double-count the final sample in every mean computed on
        this grid.  Entries are plain Python floats.
        """
        if step <= 0:
            raise ValueError("step must be positive")
        times = [float(t) for t in np.arange(0.0, self.duration, step)]
        while times and times[-1] >= self.duration - TIME_EPS:
            times.pop()
        times.append(float(self.duration))
        return times

    def gradient_profile(
        self, times: Iterable[float] | None = None
    ) -> dict[float, float]:
        """Max absolute skew observed per pair distance.

        The empirical ``f(d)``: for each distinct distance ``d`` in the
        network, the largest ``|L_i(t) - L_j(t)|`` seen over the sampled
        times among pairs at distance ``d``.  An algorithm satisfies
        ``f``-GCS on this run iff the profile sits below ``f``.

        Answered from a :class:`~repro.analysis.field.SkewField` (one
        batched trajectory matrix instead of ``O(T n^2)`` bisect
        lookups), which is what makes diameters in the hundreds usable.
        """
        from repro.analysis.field import SkewField

        times = list(times) if times is not None else self.sample_times()
        return SkewField(self, times).gradient_profile()

    # ------------------------------------------------------------------
    # model-compliance checks

    def check_validity(self, *, rate: float = VALIDITY_RATE, step: float = 0.5) -> None:
        """Requirement 1 for every node; raises :class:`ValidityError`."""
        for node in self.topology.nodes:
            self.logical[node].check_validity(self.duration, rate=rate, step=step)

    def check_drift_bounds(self) -> None:
        """Assumption 1 for every node (re-validated; construction enforces it)."""
        for node, hw in self.hardware.items():
            lo, hi = 1.0 - self.rho, 1.0 + self.rho
            if not hw.schedule.within_bounds(lo - TIME_EPS, hi + TIME_EPS):
                raise ValidityError(f"node {node} hardware rate out of bounds")

    def check_delay_bounds(self) -> None:
        """Every delivered message's delay within ``[0, d_ij]``.

        ``d_ij`` is read from the network live at the message's *send*
        time: a delay is chosen (and validated) when the message enters
        the wire, and a later rewiring does not retroactively change it.
        """
        for m in self.messages:
            d = self.topology_at(m.send_time).distance(m.sender, m.receiver)
            if m.delay < -TIME_EPS or m.delay > d + TIME_EPS:
                raise DelayBoundError(
                    f"message {m.seq} ({m.sender}->{m.receiver}) delay {m.delay} "
                    f"outside [0, {d}]"
                )

    def delays_within(
        self,
        lo_frac: float,
        hi_frac: float,
        *,
        received_from: float = 0.0,
        received_until: float | None = None,
    ) -> bool:
        """Whether messages received in the window have delay in
        ``[lo_frac * d, hi_frac * d]``.

        This is the precondition shape of both lemmas: Add Skew needs delay
        exactly ``d/2`` in its window, Bounded Increase needs
        ``[d/4, 3d/4]`` throughout.
        """
        until = received_until if received_until is not None else self.duration
        for m in self.messages:
            rt = m.receive_time
            if rt < received_from - TIME_EPS or rt > until + TIME_EPS:
                continue
            d = self.topology_at(m.send_time).distance(m.sender, m.receiver)
            if m.delay < lo_frac * d - 1e-6 or m.delay > hi_frac * d + 1e-6:
                return False
        return True

    def rates_within(
        self, lo: float, hi: float, *, t_from: float = 0.0, t_until: float | None = None
    ) -> bool:
        """Whether all hardware rates over the window lie in ``[lo, hi]``."""
        until = t_until if t_until is not None else self.duration
        for hw in self.hardware.values():
            if hw.schedule.min_rate(t_from, until) < lo - TIME_EPS:
                return False
            if hw.schedule.max_rate(t_from, until) > hi + TIME_EPS:
                return False
        return True

    # ------------------------------------------------------------------
    # trajectory helpers (used by analysis & plots)

    def logical_trajectory(
        self, node: int, times: Sequence[float]
    ) -> np.ndarray:
        return self.logical[node].values_at(np.asarray(times, dtype=float))

    def skew_trajectory(
        self, i: int, j: int, times: Sequence[float]
    ) -> np.ndarray:
        t = np.asarray(times, dtype=float)
        return self.logical[i].values_at(t) - self.logical[j].values_at(t)

    def increase_window_starts(
        self, *, window: float = 1.0, step: float = 0.25, t_from: float = 0.0
    ) -> np.ndarray:
        """The Lemma 7.1 window grid :meth:`max_logical_increase` sweeps.

        Exposed so tests can pin the window count: the old ``t += step``
        accumulator drifted and silently skipped the last window near
        ``duration`` once executions got long enough.
        """
        return window_starts(
            self.duration, window=window, step=step, t_from=t_from
        )

    def max_logical_increase(self, *, window: float = 1.0, step: float = 0.25,
                             t_from: float = 0.0) -> float:
        """``max_i max_t L_i(t + window) - L_i(t)`` — Lemma 7.1's quantity."""
        starts = self.increase_window_starts(
            window=window, step=step, t_from=t_from
        )
        if starts.size == 0:
            return 0.0
        ends = starts + window
        worst = 0.0
        for node in self.topology.nodes:
            clock = self.logical[node]
            gains = clock.values_at(ends) - clock.values_at(starts)
            worst = max(worst, float(gains.max()))
        return worst
