"""Execution traces.

Section 3's indistinguishability principle: a node behaves identically in
two executions if the same actions occur in the same order at the same
*hardware clock readings*.  A :class:`TraceEvent` therefore records, for
every action, both the real time (the adversary's view) and the hardware
reading (the node's view).  Comparing per-node projections on hardware
readings is exactly the executable form of the principle, implemented in
:mod:`repro.gcs.indistinguishability`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Iterator

__all__ = [
    "TraceEvent",
    "ExecutionTrace",
    "ColumnarTrace",
    "SEND",
    "RECEIVE",
    "TIMER",
    "JUMP",
    "RATE",
    "START",
    "CRASH",
    "RECOVER",
    "TOPOLOGY",
]

SEND = "send"
RECEIVE = "receive"
TIMER = "timer"
JUMP = "jump"
RATE = "rate"
START = "start"
CRASH = "crash"
RECOVER = "recover"
#: A dynamic-topology change-point (adversary-side, not node-observable;
#: recorded with ``node = -1`` so no node's local projection sees it).
TOPOLOGY = "topology"


@dataclass(frozen=True)
class TraceEvent:
    """One observable action.

    Attributes
    ----------
    real_time:
        When the action happened on the adversary's wall clock.
    node:
        Where it happened.
    hardware:
        The node's hardware clock reading at that instant — the only
        timestamp the node itself can see.
    logical:
        The node's logical clock value just after the action.
    kind:
        One of ``send / receive / timer / jump / start``.
    detail:
        Kind-specific payload: peer node and message payload for
        ``send``/``receive``, timer name for ``timer``, jump size for
        ``jump``.
    """

    real_time: float
    node: int
    hardware: float
    logical: float
    kind: str
    detail: Any = None


@dataclass
class ExecutionTrace:
    """All actions of one execution, in global (time, insertion) order."""

    events: list[TraceEvent] = field(default_factory=list)

    def append(self, event: TraceEvent) -> None:
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def for_node(self, node: int) -> list[TraceEvent]:
        """The node's local view, in order of occurrence."""
        return [e for e in self.events if e.node == node]

    def of_kind(self, *kinds: str) -> list[TraceEvent]:
        return [e for e in self.events if e.kind in kinds]

    def until(self, real_time: float) -> "ExecutionTrace":
        """The prefix of the trace up to and including ``real_time``."""
        return ExecutionTrace([e for e in self.events if e.real_time <= real_time])

    def local_observations(self, node: int) -> list[tuple[str, float, Any]]:
        """The node-visible projection: ``(kind, hardware_reading, detail)``.

        Real times and logical values are dropped: two executions are
        indistinguishable to a node iff these projections match.  (The
        logical value is a function of the observations, so it is redundant;
        keeping it out makes the comparison a genuine observation check.)
        """
        return [(e.kind, e.hardware, e.detail) for e in self.for_node(node)]

    def message_records(self) -> list[TraceEvent]:
        """All receive events (each corresponds to one delivered message)."""
        return self.of_kind(RECEIVE)

    def digest(self) -> str:
        """Canonical SHA-256 of the trace.

        Computed over the ``repr`` of every event in order — the exact
        blob the sweep engine's ``trace_digest`` probe has always
        hashed, now single-sourced so the scalar/batched engine
        equivalence harness and the sweep cache compare the same bytes.
        """
        blob = "\n".join(repr(e) for e in self.events)
        return hashlib.sha256(blob.encode()).hexdigest()


class ColumnarTrace(ExecutionTrace):
    """A trace recorded as raw field rows, materialized lazily.

    The batched engine appends one plain tuple
    ``(real_time, node, hardware, logical, kind, detail)`` per action in
    its hot loop and only pays for :class:`TraceEvent` construction if
    the trace is actually read — measurements that never touch the trace
    (long benign sweeps) skip the cost entirely.  Once materialized, the
    events are cached and indistinguishable from a scalar-engine trace:
    equality, iteration, projections, and :meth:`digest` all see
    identical :class:`TraceEvent` values.
    """

    def __init__(self, rows: list[tuple] | None = None):
        self._rows: list[tuple] = rows if rows is not None else []
        self._events: list[TraceEvent] | None = None

    @property
    def events(self) -> list[TraceEvent]:  # type: ignore[override]
        if self._events is None:
            self._events = [TraceEvent(*row) for row in self._rows]
        return self._events

    def append(self, event: TraceEvent) -> None:
        self._rows.append(
            (
                event.real_time,
                event.node,
                event.hardware,
                event.logical,
                event.kind,
                event.detail,
            )
        )
        if self._events is not None:
            self._events.append(event)

    def append_row(
        self,
        real_time: float,
        node: int,
        hardware: float,
        logical: float,
        kind: str,
        detail: Any = None,
    ) -> None:
        """Hot-path append: record the fields without building an event."""
        self._rows.append((real_time, node, hardware, logical, kind, detail))
        self._events = None

    def __len__(self) -> int:
        return len(self._rows)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ExecutionTrace):
            return self.events == other.events
        return NotImplemented

    __hash__ = None  # type: ignore[assignment]
