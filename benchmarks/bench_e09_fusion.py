"""E09 — data fusion: mis-fusion rate vs tolerance."""

import pytest

from conftest import report
from repro.experiments import run_experiment


@pytest.mark.benchmark(group="E09-fusion")
def test_e09_fusion(benchmark):
    result = benchmark.pedantic(
        run_experiment, args=("E09", "quick"), rounds=1, iterations=1
    )
    report(result)
    series = result.data["series"]
    tolerances = sorted(series["max-based"])
    mid = tolerances[len(tolerances) // 2]
    # Synchronized sensors fuse better than unsynchronized ones.
    assert series["max-based"][mid] < series["null"][mid]
