"""E07 — TDMA with fixed slot granularity fails as the network grows."""

import pytest

from conftest import report
from repro.experiments import run_experiment


@pytest.mark.benchmark(group="E07-tdma")
def test_e07_tdma(benchmark):
    result = benchmark.pedantic(
        run_experiment, args=("E07", "quick"), rounds=1, iterations=1
    )
    report(result)
    quiet = result.data["series"]["quiet"]
    adversarial = result.data["series"]["adversarial"]
    # Quiet executions never collide; adversarial ones do.
    assert all(rate == 0 for rate in quiet.values())
    assert any(rate > 0 for rate in adversarial.values())
