"""Viz rendering throughput: heatmap cells/second and dashboard latency.

Rendering is pure string assembly, so throughput is the one performance
property worth guarding: a dashboard over a big run is O(cells) rect
elements, and a regression here turns sweep reporting from instant into
minutes.  Records the headline numbers to ``BENCH_viz.json`` with a
sanity floor on cells/second.
"""

from __future__ import annotations

import sys
import time
import xml.etree.ElementTree as ET

import numpy as np
import pytest

from conftest import write_headline
from repro.viz.cli import run_scenario
from repro.viz.dashboard import skew_dashboard
from repro.viz.panels import heatmap_panel
from repro.viz.svg import SvgCanvas

#: Sanity floor: string-assembly rendering must stay at least this fast.
#: The measured rate on a development container is ~10x higher, so a
#: breach means an accidental per-cell inefficiency, not machine noise.
MIN_CELLS_PER_SEC = 20_000.0

ROWS, COLS = 48, 256


@pytest.mark.benchmark(group="viz")
def test_heatmap_cells_per_second(benchmark):
    rng = np.random.default_rng(0)
    matrix = rng.random((ROWS, COLS))

    def render() -> int:
        canvas = SvgCanvas(900, 500)
        cells = heatmap_panel(canvas, 60, 40, 780, 400, matrix)
        svg = canvas.to_string()
        assert svg
        return cells

    cells = benchmark.pedantic(render, rounds=3, iterations=1, warmup_rounds=1)
    elapsed = benchmark.stats.stats.mean
    rate = cells / elapsed

    start = time.perf_counter()
    execution = run_scenario(
        topology="line:64", algorithm="gradient",
        faults="crash-recover:0.25,3", mobility="waypoint:0.5",
        duration=8.0, seed=2,
    )
    sim_s = time.perf_counter() - start
    start = time.perf_counter()
    dashboard = skew_dashboard(execution)
    dash_s = time.perf_counter() - start
    ET.fromstring(dashboard)

    print(
        f"\nheatmap: {cells} cells in {elapsed * 1e3:.2f} ms "
        f"-> {rate:,.0f} cells/s; 64-node dashboard: "
        f"{dash_s * 1e3:.1f} ms render ({sim_s:.2f} s simulate)"
    )
    write_headline(
        "viz",
        {
            "heatmap_rows": ROWS,
            "heatmap_cols": COLS,
            "heatmap_cells_per_sec": round(rate),
            "min_cells_per_sec": MIN_CELLS_PER_SEC,
            "dashboard_nodes": 64,
            "dashboard_render_s": round(dash_s, 4),
            "dashboard_bytes": len(dashboard),
        },
    )
    assert rate >= MIN_CELLS_PER_SEC


if __name__ == "__main__":  # pragma: no cover
    sys.exit(pytest.main([__file__, "-q", "-s"]))
