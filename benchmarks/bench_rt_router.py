"""Router transport throughput: the E14 node-count ladder, timed.

Run with pytest (``python -m pytest benchmarks/bench_rt_router.py -s``)
or directly (``python benchmarks/bench_rt_router.py``).  Climbs the same
router ladder experiment E14 reports — gradient on growing line/grid
networks, hundreds of nodes multiplexed onto a few worker processes —
and records events/sec per rung into ``BENCH_rt.json`` at the repo root.

The floor is deliberately modest: router throughput is wall-clock bound
(workers sleep between due events), so events/sec mostly measures how
much concurrent work the multiplexed loop sustains without falling
behind, not raw dispatch speed.  A pathological regression (quadratic
routing, lost frames stalling the ladder, worker churn) lands far below
it; honest scheduling jitter never does.
"""

from __future__ import annotations

import sys

from conftest import write_headline

from repro.analysis.reporting import Table
from repro.experiments.e14_live import LADDER_FULL, ladder_cell

#: The ladder's biggest rungs dominate runtime; keep duration short.
DURATION = 6.0
TIME_SCALE = 0.1
SEED = 0

#: Aggregate floor across the ladder's largest rung (events/sec over all
#: workers).  A 512-node line at duration 6 dispatches thousands of
#: events in ~0.6s of wall time, so 1000/s only catches order-of-
#: magnitude regressions.
MIN_EVENTS_PER_SEC = 1_000


def test_router_ladder_events_per_sec():
    cells = [
        ladder_cell(
            spec,
            duration=DURATION,
            rho=0.2,
            seed=SEED,
            time_scale=TIME_SCALE,
        )
        for spec in LADDER_FULL
    ]
    table = Table(
        title="bench_rt_router: events/sec up the E14 node-count ladder",
        headers=["topology", "n", "workers", "events", "events/sec", "wall s"],
        caption=(
            f"gradient, duration {DURATION} sim units at time_scale "
            f"{TIME_SCALE}, seed {SEED}; floor {MIN_EVENTS_PER_SEC} "
            f"events/s on the largest rung."
        ),
    )
    for cell in cells:
        table.add_row(
            cell["topology"],
            cell["n_nodes"],
            cell["workers"],
            cell["events"],
            round(cell["events_per_sec"], 1),
            round(cell["wall_elapsed"], 3),
        )
    print("\n" + table.render())

    write_headline(
        "rt",
        {
            "ladder": [
                {
                    "topology": c["topology"],
                    "n_nodes": c["n_nodes"],
                    "workers": c["workers"],
                    "events": c["events"],
                    "events_per_sec": round(c["events_per_sec"], 2),
                    "bounded": c["bounded"],
                    "wall_elapsed": round(c["wall_elapsed"], 4),
                }
                for c in cells
            ],
            "min_events_per_sec": MIN_EVENTS_PER_SEC,
        },
    )

    largest = max(cells, key=lambda c: c["n_nodes"])
    assert largest["events_per_sec"] >= MIN_EVENTS_PER_SEC, (
        f"router ladder rung {largest['topology']} only "
        f"{largest['events_per_sec']:.0f} events/s"
    )
    assert all(c["bounded"] for c in cells), (
        "router ladder rung left the diameter+1 skew budget: "
        + ", ".join(c["topology"] for c in cells if not c["bounded"])
    )


if __name__ == "__main__":  # pragma: no cover
    test_router_ladder_events_per_sec()
    print("\nbench_rt_router: ok")
    sys.exit(0)
