"""E08 — RBS: near-zero uncertainty makes the bound small."""

import pytest

from conftest import report
from repro.experiments import run_experiment


@pytest.mark.benchmark(group="E08-rbs")
def test_e08_rbs(benchmark):
    result = benchmark.pedantic(
        run_experiment, args=("E08", "quick"), rounds=1, iterations=1
    )
    report(result)
    assert result.data["cluster_skew"] < result.data["line_skew"]
