"""E16 — mobility & dynamic topologies (beyond the paper's model)."""

import pytest

from conftest import report
from repro.experiments import run_experiment


@pytest.mark.benchmark(group="E16-mobility")
def test_e16_mobility(benchmark):
    result = benchmark.pedantic(
        run_experiment, args=("E16", "quick"), kwargs={"workers": 2},
        rounds=1, iterations=1,
    )
    report(result)
    ladder = result.tables[0].as_dicts()
    assert ladder
    # Stillness anchors at exactly 1x; every moving rung actually rewired.
    for row in ladder:
        if row["mobility"] == "waypoint:0,4":
            assert float(row["x still"]) == pytest.approx(1.0)
        if row["mobility"].startswith("waypoint"):
            assert int(row["rewirings"]) > 0
        else:
            assert int(row["rewirings"]) == 0
    # The gradient story: motion must raise the *adjacent* skew of at
    # least one algorithm relative to its still twin.
    adj = {
        (r["topology"], r["algorithm"], r["mobility"]): float(r["final_adj"])
        for r in ladder
    }
    assert any(
        adj[(t, a, m)] > adj[(t, a, "waypoint:0,4")] + 1e-6
        for (t, a, m) in adj
        if m.startswith("waypoint") and m != "waypoint:0,4"
    )
    # Part 2: every algorithm's adjacent series spiked at the rewiring
    # and the table reports a re-tightening verdict for each.
    reconv = result.tables[1].as_dicts()
    assert len(reconv) >= 3
    for row in reconv:
        assert float(row["peak adj"]) >= float(row["pre adj"]) - 1e-9
