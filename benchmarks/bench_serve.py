"""Sweep-service throughput: jobs/second through the daemon, cold and warm.

Two numbers matter for serving sweep traffic: how fast a fresh grid
drains through the submit → queue → worker → store path (cold), and how
fast a resubmitted grid comes back entirely from the content-addressed
store (warm — no forking, no simulation, just manifest + object reads
over the wire).  Both are floored; the cold rate also carries the
differential sanity check that the served metrics are bit-identical to
an in-process :func:`~repro.sweep.runner.run_jobs` call, so the
benchmark cannot pass by serving the wrong bytes quickly.  Records the
headline numbers to ``BENCH_serve.json``.
"""

from __future__ import annotations

import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import pytest

from conftest import write_headline
from repro.serve.client import ServeClient
from repro.sweep.runner import run_jobs
from repro.sweep.spec import SweepSpec

#: Sanity floors.  On a development container the measured cold rate is
#: ~10-30 jobs/s at 2 workers (tiny sim cells) and the warm rate is
#: hundreds/s, so a breach means a real serialization or scheduling
#: regression, not machine noise.
MIN_COLD_JOBS_PER_SEC = 1.0
MIN_WARM_JOBS_PER_SEC = 10.0

SPEC = SweepSpec(
    name="bench-serve",
    topologies=("line:7", "ring:8"),
    algorithms=("max-based", "bounded-catch-up"),
    rate_families=("drifted",),
    seeds=(0, 1, 2),
    duration=20.0,
)


@pytest.mark.benchmark(group="serve")
def test_serve_jobs_per_second(benchmark):
    store = Path(tempfile.mkdtemp(prefix="bench-serve-")) / "store"
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    daemon = subprocess.Popen(
        [
            sys.executable, "-m", "repro.serve", "start",
            "--store", str(store), "--workers", "2",
        ],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    jobs = SPEC.jobs()
    try:
        with ServeClient(store=store) as client:
            start = time.perf_counter()
            receipt = client.submit(SPEC)
            final = client.wait(receipt["sweep"], timeout=300)
            cold_s = time.perf_counter() - start
            assert final["counts"]["done"] == len(jobs)
            served = client.fetch(receipt["sweep"])

        def warm_roundtrip() -> int:
            with ServeClient(store=store) as warm:
                again = warm.submit(SPEC)
                assert again["queued"] == 0
                warm.wait(again["sweep"], timeout=60)
                return len(warm.fetch(again["sweep"]))

        count = benchmark.pedantic(
            warm_roundtrip, rounds=3, iterations=1, warmup_rounds=1
        )
        warm_s = benchmark.stats.stats.mean
        with ServeClient(store=store) as closer:
            stats = closer.stats()
            closer.shutdown()
        daemon.wait(timeout=15)
    finally:
        if daemon.poll() is None:
            daemon.kill()
            daemon.wait(timeout=10)

    # The differential guard: fast but wrong must fail.
    expected = [outcome.metrics for outcome in run_jobs(jobs, workers=1)]
    assert served == expected
    assert stats["executed"] == len(jobs)

    cold_rate = len(jobs) / cold_s
    warm_rate = count / warm_s
    print(
        f"\nserve: {len(jobs)} jobs cold in {cold_s:.2f}s "
        f"-> {cold_rate:.1f} jobs/s; warm resubmission in "
        f"{warm_s * 1e3:.1f} ms -> {warm_rate:,.0f} jobs/s"
    )
    write_headline(
        "serve",
        {
            "grid_jobs": len(jobs),
            "workers": 2,
            "cold_jobs_per_sec": round(cold_rate, 2),
            "warm_jobs_per_sec": round(warm_rate, 1),
            "min_cold_jobs_per_sec": MIN_COLD_JOBS_PER_SEC,
            "min_warm_jobs_per_sec": MIN_WARM_JOBS_PER_SEC,
        },
    )
    assert cold_rate >= MIN_COLD_JOBS_PER_SEC
    assert warm_rate >= MIN_WARM_JOBS_PER_SEC


if __name__ == "__main__":  # pragma: no cover
    sys.exit(pytest.main([__file__, "-q", "-s"]))
