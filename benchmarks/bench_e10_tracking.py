"""E10 — target tracking: acceptable skew is a gradient in distance."""

import pytest

from conftest import report
from repro.apps.tracking import required_skew_for_accuracy
from repro.experiments import run_experiment


@pytest.mark.benchmark(group="E10-tracking")
def test_e10_tracking(benchmark):
    result = benchmark.pedantic(
        run_experiment, args=("E10", "quick"), rounds=1, iterations=1
    )
    report(result)
    # The skew budget column is exactly linear in separation.
    v = result.data["velocity"]
    assert required_skew_for_accuracy(8.0, v) == pytest.approx(
        8.0 * required_skew_for_accuracy(1.0, v)
    )
