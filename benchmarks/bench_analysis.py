"""Analysis-core throughput: scalar ``value_at`` path vs ``SkewField``.

Run with pytest (``python -m pytest benchmarks/bench_analysis.py -s``)
or directly (``python benchmarks/bench_analysis.py``).  One benign
128-node execution is measured twice:

* **scalar** — the pre-vectorization path: ``skew_matrix`` /
  ``max_adjacent_skew`` / ``logical_snapshot`` once per sample time,
  each a ``value_at`` bisect per node (kept as the simulator-facing
  API, so it doubles as the reference implementation);
* **batched** — one :class:`~repro.analysis.field.SkewField` build
  answering ``summarize`` and ``gradient_profile`` from the trajectory
  matrix.

The batched path must be **>= 10x** faster on both queries and must
agree with the scalar path within 1e-9.  Headline numbers land in
``BENCH_analysis.json`` at the repo root so the perf trajectory is
recorded next to the code.
"""

from __future__ import annotations

import sys
import time

import numpy as np

from conftest import write_headline
from repro.algorithms import MaxBasedAlgorithm
from repro.analysis.field import SkewField
from repro.analysis.reporting import Table
from repro.analysis.skew import SkewSummary, summarize
from repro.sim.simulator import SimConfig, run_simulation
from repro.sweep.families import drifted_rates
from repro.topology.generators import line

N_NODES = 128
DURATION = 60.0
STEP = 0.25
REQUIRED_SPEEDUP = 10.0


def build_execution():
    topology = line(N_NODES)
    algorithm = MaxBasedAlgorithm()
    return run_simulation(
        topology,
        algorithm.processes(topology),
        SimConfig(duration=DURATION, rho=0.2, seed=0),
        rate_schedules=drifted_rates(topology, rho=0.2, seed=0),
    )


# ----------------------------------------------------------------------
# the scalar reference path (what summarize/gradient_profile did before)


def scalar_summarize(execution, *, step: float) -> SkewSummary:
    times = execution.sample_times(step)
    peak, peak_adj, abs_sum, count = 0.0, 0.0, 0.0, 0
    for t in times:
        m = execution.skew_matrix(t)
        peak = max(peak, float(np.abs(m).max()))
        peak_adj = max(peak_adj, execution.max_adjacent_skew(t))
        abs_sum += float(np.abs(m).sum()) / max(m.size - m.shape[0], 1)
        count += 1
    return SkewSummary(
        max_skew=peak,
        max_adjacent_skew=peak_adj,
        final_skew=execution.max_skew(execution.duration),
        final_adjacent_skew=execution.max_adjacent_skew(execution.duration),
        mean_abs_skew=abs_sum / max(count, 1),
    )


def scalar_gradient_profile(execution, times) -> dict[float, float]:
    profile: dict[float, float] = {}
    snapshots = [execution.logical_snapshot(t) for t in times]
    for i, j in execution.topology.pairs():
        d = round(execution.topology.distance(i, j), 9)
        worst = max(abs(snap[i] - snap[j]) for snap in snapshots)
        if worst > profile.get(d, float("-inf")):
            profile[d] = worst
    return dict(sorted(profile.items()))


def _timed(fn):
    start = time.perf_counter()
    out = fn()
    return time.perf_counter() - start, out


def test_analysis_speedup():
    execution = build_execution()
    times = execution.sample_times(STEP)

    scalar_sum_s, scalar_sum = _timed(
        lambda: scalar_summarize(execution, step=STEP)
    )
    scalar_prof_s, scalar_prof = _timed(
        lambda: scalar_gradient_profile(execution, times)
    )
    batched_sum_s, batched_sum = _timed(lambda: summarize(execution, step=STEP))
    batched_prof_s, batched_prof = _timed(
        lambda: SkewField(execution, times).gradient_profile()
    )

    # Equivalence first: speed means nothing if the numbers moved.
    for a, b in zip(scalar_sum.as_row(), batched_sum.as_row()):
        assert abs(a - b) <= 1e-9, (scalar_sum, batched_sum)
    assert scalar_prof.keys() == batched_prof.keys()
    for d in scalar_prof:
        assert abs(scalar_prof[d] - batched_prof[d]) <= 1e-9

    sum_speedup = scalar_sum_s / batched_sum_s
    prof_speedup = scalar_prof_s / batched_prof_s

    table = Table(
        title=f"bench_analysis: {N_NODES}-node line, {len(times)} samples",
        headers=["query", "scalar s", "batched s", "speedup"],
        caption=f"required speedup {REQUIRED_SPEEDUP}x on both queries.",
    )
    table.add_row("summarize", scalar_sum_s, batched_sum_s, sum_speedup)
    table.add_row("gradient_profile", scalar_prof_s, batched_prof_s, prof_speedup)
    print("\n" + table.render())

    path = write_headline(
        "analysis",
        {
            "n_nodes": N_NODES,
            "duration": DURATION,
            "step": STEP,
            "samples": len(times),
            "summarize": {
                "scalar_s": scalar_sum_s,
                "batched_s": batched_sum_s,
                "speedup": sum_speedup,
            },
            "gradient_profile": {
                "scalar_s": scalar_prof_s,
                "batched_s": batched_prof_s,
                "speedup": prof_speedup,
            },
        },
    )
    print(f"headline numbers -> {path}")

    assert sum_speedup >= REQUIRED_SPEEDUP, (
        f"summarize only {sum_speedup:.1f}x faster batched"
    )
    assert prof_speedup >= REQUIRED_SPEEDUP, (
        f"gradient_profile only {prof_speedup:.1f}x faster batched"
    )


if __name__ == "__main__":  # pragma: no cover
    test_analysis_speedup()
    print("\nbench_analysis: ok")
    sys.exit(0)
