"""E06 — Lemma 7.1: logical clocks gain at most 16 f(1) per unit time."""

import pytest

from conftest import report
from repro.experiments import run_experiment


@pytest.mark.benchmark(group="E06-bounded-increase")
def test_e06_bounded_increase(benchmark):
    result = benchmark.pedantic(
        run_experiment, args=("E06", "quick"), rounds=1, iterations=1
    )
    report(result)
    for row in result.tables[0].as_dicts():
        assert row["within bound"] == "yes"
