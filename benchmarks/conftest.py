"""Shared helpers for the benchmark harness.

Each benchmark regenerates one of the paper's evaluation artifacts
(tables E01-E11 as defined in DESIGN.md / EXPERIMENTS.md), times it via
pytest-benchmark, prints the regenerated table, and writes it under
``benchmarks/results/`` so the harness output is preserved verbatim.
"""

from __future__ import annotations

from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def report(result) -> None:
    """Print and persist one experiment's regenerated tables."""
    RESULTS_DIR.mkdir(exist_ok=True)
    text = result.render()
    (RESULTS_DIR / f"{result.experiment_id}.txt").write_text(text + "\n")
    print("\n" + text)
