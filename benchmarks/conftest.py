"""Shared helpers for the benchmark harness.

Each benchmark regenerates one of the paper's evaluation artifacts
(tables E01-E11 as defined in DESIGN.md / EXPERIMENTS.md), times it via
pytest-benchmark, prints the regenerated table, and writes it under
``benchmarks/results/`` so the harness output is preserved verbatim.
"""

from __future__ import annotations

import json
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"
REPO_ROOT = Path(__file__).parent.parent


def report(result) -> None:
    """Print and persist one experiment's regenerated tables."""
    RESULTS_DIR.mkdir(exist_ok=True)
    text = result.render()
    (RESULTS_DIR / f"{result.experiment_id}.txt").write_text(text + "\n")
    print("\n" + text)


def write_headline(name: str, payload: dict) -> Path:
    """Record a benchmark's headline numbers at the repo root.

    Writes ``BENCH_<name>.json`` next to README.md so the performance
    trajectory is versioned alongside the code it measures (the analysis
    bench writes ``BENCH_analysis.json`` this way).
    """
    path = REPO_ROOT / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path
