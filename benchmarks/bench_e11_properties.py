"""E11 — requirements audit: validity + gradient profiles."""

import pytest

from conftest import report
from repro.experiments import run_experiment


@pytest.mark.benchmark(group="E11-properties")
def test_e11_properties(benchmark):
    result = benchmark.pedantic(
        run_experiment, args=("E11", "quick"), rounds=1, iterations=1
    )
    report(result)
    for row in result.tables[0].as_dicts():
        assert row["validity"] == "ok"
