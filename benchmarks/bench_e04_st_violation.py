"""E04 — Section 2 worked example: ~D skew at distance 1."""

import pytest

from conftest import report
from repro.experiments import run_experiment


@pytest.mark.benchmark(group="E04-st-violation")
def test_e04_st_violation(benchmark):
    result = benchmark.pedantic(
        run_experiment, args=("E04", "quick"), rounds=1, iterations=1
    )
    report(result)
    for algorithm, series in result.data["series"].items():
        ds = sorted(series)
        # Linear-in-D distance-1 skew: the gradient violation.
        assert series[ds[-1]] > series[ds[0]], algorithm
        for d in ds:
            assert series[d] > 0.5 * d, algorithm
