"""E05 — Lemma 6.1 quantitative verification."""

import pytest

from conftest import report
from repro.experiments import run_experiment


@pytest.mark.benchmark(group="E05-add-skew")
def test_e05_add_skew(benchmark):
    result = benchmark.pedantic(
        run_experiment, args=("E05", "quick"), rounds=1, iterations=1
    )
    report(result)
    for row in result.tables[0].as_dicts():
        assert row["indist."] == "yes"
        assert row["delays in [d/4,3d/4]"] == "yes"
        assert float(row["gain"]) >= float(row["guarantee (j-i)/12"]) - 1e-6
