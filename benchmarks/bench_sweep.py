"""Sweep engine throughput: serial vs parallel, cold vs cached.

Run with pytest (``python -m pytest benchmarks/bench_sweep.py -s``) or
directly (``python benchmarks/bench_sweep.py``).  Two measurements:

* **serial vs parallel** — the same grid at 1 worker and at 4 workers.
  On a machine with >= 4 usable cores the parallel run must be >= 2x
  faster; on smaller machines (CI containers are often 1-core) the
  speedup is reported but only sanity-checked, since no amount of
  forking buys throughput the hardware doesn't have.
* **cold vs warm cache** — the same grid against an empty and then a
  populated result cache; the warm run must be much faster and must
  reproduce the cold run's metrics exactly.
"""

from __future__ import annotations

import os
import sys
import tempfile
import time

from repro.analysis.reporting import Table
from repro.sweep import ResultCache, SweepSpec, run_jobs

PARALLEL_WORKERS = 4
REQUIRED_SPEEDUP = 2.0

#: Jobs sized so each takes an appreciable fraction of a second —
#: fork/IPC overhead must be amortized for the speedup to be honest.
BENCH_SPEC = SweepSpec(
    name="bench",
    topologies=("line:11", "ring:12"),
    algorithms=("max-based:0.5", "bounded-catch-up:0.5"),
    rate_families=("drifted", "wandering"),
    delay_policies=("uniform",),
    seeds=(0,),
    duration=150.0,
    rho=0.2,
    step=0.5,
)


def usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _timed(**kwargs) -> tuple[float, list]:
    start = time.perf_counter()
    outcomes = run_jobs(BENCH_SPEC.jobs(), **kwargs)
    return time.perf_counter() - start, outcomes


def test_parallel_speedup():
    serial_s, serial = _timed(workers=1)
    parallel_s, parallel = _timed(workers=PARALLEL_WORKERS)
    speedup = serial_s / parallel_s
    cores = usable_cores()

    table = Table(
        title=f"bench_sweep: {BENCH_SPEC.size} jobs, serial vs {PARALLEL_WORKERS} workers",
        headers=["mode", "workers", "seconds", "jobs/s", "speedup"],
        caption=f"{cores} usable core(s); required speedup {REQUIRED_SPEEDUP}x "
        f"enforced when cores >= {PARALLEL_WORKERS}.",
    )
    table.add_row("serial", 1, serial_s, BENCH_SPEC.size / serial_s, 1.0)
    table.add_row(
        "parallel", PARALLEL_WORKERS, parallel_s, BENCH_SPEC.size / parallel_s, speedup
    )
    print("\n" + table.render())

    # Determinism is non-negotiable at any core count.
    assert [o.metrics for o in parallel] == [o.metrics for o in serial]
    if cores >= PARALLEL_WORKERS:
        assert speedup >= REQUIRED_SPEEDUP, (
            f"parallel sweep only {speedup:.2f}x faster on {cores} cores"
        )
    else:
        # Can't manufacture cores; just require the pool not to choke.
        assert speedup > 0.3, f"pool overhead pathological: {speedup:.2f}x"


def test_cache_speedup():
    with tempfile.TemporaryDirectory() as tmp:
        cold_s, cold = _timed(workers=1, cache=ResultCache(tmp))
        warm_cache = ResultCache(tmp)
        warm_s, warm = _timed(workers=1, cache=warm_cache)

    table = Table(
        title=f"bench_sweep: cold vs warm cache ({BENCH_SPEC.size} jobs)",
        headers=["mode", "seconds", "hits", "speedup"],
        caption="Warm runs replay metrics from disk without simulating.",
    )
    table.add_row("cold", cold_s, 0, 1.0)
    table.add_row("warm", warm_s, warm_cache.hits, cold_s / warm_s)
    print("\n" + table.render())

    assert warm_cache.hits == BENCH_SPEC.size
    assert [o.metrics for o in warm] == [o.metrics for o in cold]
    assert cold_s / warm_s >= 2.0, "cache recall should dominate re-simulating"


if __name__ == "__main__":  # pragma: no cover
    test_parallel_speedup()
    test_cache_speedup()
    print("\nbench_sweep: ok")
    sys.exit(0)
