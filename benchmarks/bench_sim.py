"""Benchmark: batched simulation engine vs. the scalar event loop.

The workload is the E15 bottleneck shape — periodic max-based gossip on a
256-node line under drifted (per-node constant) rates — which is what
capped realistic scale runs near D≈512 before the batched engine landed.

Two ratios are reported:

* **at-scale** — scalar in its default configuration (``record_trace=True``,
  exactly how every experiment ran before this engine existed) vs. the
  batched engine in its at-scale configuration (``record_trace=False``,
  which lets it skip clock materialization entirely).  This is the
  apples-to-apples "what E15 pays before vs. after" number and the one the
  ``REQUIRED_SPEEDUP`` floor applies to.
* **same-config** — both engines untraced.  Structurally smaller because
  the per-event algorithm callbacks (pure python, identical under both
  engines) dominate once tracing is off.  Recorded in the headline JSON
  un-floored, for honesty.

Equivalence is asserted before any timing: a smaller traced pair must
produce byte-identical digests, identical message lists and bitwise-equal
logical-clock matrices.  Speed means nothing if the numbers moved.

Timing methodology: the cyclic garbage collector is collected-then-disabled
around every timed run (GC pauses land on whichever engine happens to be
running and can double a measurement), engines are interleaved within each
round (shared-host speed drifts by tens of percent over minutes, so the
ratio is taken between runs in the same speed window), and rounds repeat
until the floor is met or ``MAX_ROUNDS`` is exhausted, keeping the
per-engine minimum as the estimate.
"""

from __future__ import annotations

import gc
import sys
import time

import numpy as np

from conftest import write_headline
from repro.algorithms import MaxBasedAlgorithm
from repro.analysis.reporting import Table
from repro.sim.simulator import SimConfig, run_simulation
from repro.sweep.families import drifted_rates
from repro.topology.generators import line

N_NODES = 256
DURATION = 60.0
RHO = 0.3
SEED = 1
REQUIRED_SPEEDUP = 5.0
MIN_ROUNDS = 3
MAX_ROUNDS = 6

EQ_NODES = 64
EQ_DURATION = 30.0


def _run(topology, rates, *, engine: str, record_trace: bool, duration: float):
    algorithm = MaxBasedAlgorithm()
    return run_simulation(
        topology,
        algorithm.processes(topology),
        SimConfig(
            duration=duration,
            rho=RHO,
            seed=SEED,
            engine=engine,
            record_trace=record_trace,
        ),
        rate_schedules=rates,
    )


def _timed(topology, rates, *, engine: str, record_trace: bool) -> float:
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        _run(
            topology, rates, engine=engine, record_trace=record_trace, duration=DURATION
        )
        return time.perf_counter() - start
    finally:
        gc.enable()


def _assert_equivalent() -> None:
    topology = line(EQ_NODES)
    rates = drifted_rates(topology, rho=RHO, seed=SEED)
    scalar = _run(topology, rates, engine="scalar", record_trace=True, duration=EQ_DURATION)
    batched = _run(topology, rates, engine="batched", record_trace=True, duration=EQ_DURATION)
    assert scalar.trace.digest() == batched.trace.digest(), "trace digests diverged"
    assert scalar.messages == batched.messages, "message lists diverged"
    probe = np.linspace(0.0, EQ_DURATION, 121)
    assert np.array_equal(
        scalar.logical_matrix(probe), batched.logical_matrix(probe)
    ), "logical values diverged"


def test_sim_speedup() -> None:
    # Equivalence first: speed means nothing if the numbers moved.
    _assert_equivalent()

    topology = line(N_NODES)
    rates = drifted_rates(topology, rho=RHO, seed=SEED)

    scalar_traced: list[float] = []
    batched_untraced: list[float] = []
    scalar_untraced: list[float] = []
    rounds = 0
    for round_index in range(MAX_ROUNDS):
        rounds = round_index + 1
        scalar_traced.append(_timed(topology, rates, engine="scalar", record_trace=True))
        batched_untraced.append(
            _timed(topology, rates, engine="batched", record_trace=False)
        )
        scalar_untraced.append(
            _timed(topology, rates, engine="scalar", record_trace=False)
        )
        if rounds >= MIN_ROUNDS:
            if min(scalar_traced) / min(batched_untraced) >= REQUIRED_SPEEDUP:
                break

    st = min(scalar_traced)
    su = min(scalar_untraced)
    bu = min(batched_untraced)
    at_scale = st / bu
    same_config = su / bu

    table = Table(
        "simulation engine wall-clock, 256-node line, 60 s horizon",
        ["configuration", "best wall (s)", "speedup vs scalar traced"],
    )
    table.add_row("scalar, traced (pre-engine default)", f"{st:.3f}", "1.00x")
    table.add_row("scalar, untraced", f"{su:.3f}", f"{st / su:.2f}x")
    table.add_row("batched, untraced (at-scale config)", f"{bu:.3f}", f"{at_scale:.2f}x")
    print()
    print(table.render())
    print(f"\nat-scale speedup   {at_scale:.2f}x (floor {REQUIRED_SPEEDUP:.1f}x)")
    print(f"same-config speedup {same_config:.2f}x (recorded, un-floored)")

    write_headline(
        "sim",
        {
            "workload": {
                "topology": f"line({N_NODES})",
                "algorithm": "max-based",
                "rates": f"drifted_rates(rho={RHO}, seed={SEED})",
                "duration": DURATION,
            },
            "wall_seconds": {
                "scalar_traced": st,
                "scalar_untraced": su,
                "batched_untraced": bu,
            },
            "speedup": {
                "at_scale": at_scale,
                "same_config": same_config,
                "required_floor_at_scale": REQUIRED_SPEEDUP,
            },
            "rounds": rounds,
        },
    )

    assert at_scale >= REQUIRED_SPEEDUP, (
        f"batched engine at-scale speedup {at_scale:.2f}x under the "
        f"{REQUIRED_SPEEDUP:.1f}x floor (scalar traced {st:.3f}s, "
        f"batched untraced {bu:.3f}s over {rounds} interleaved rounds)"
    )


if __name__ == "__main__":
    test_sim_speedup()
    print("\nbench_sim: ok")
    sys.exit(0)
