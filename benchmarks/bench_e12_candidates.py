"""E12 — Section 9's conjecture: candidate gradient algorithms (extension)."""

import pytest

from conftest import report
from repro.experiments import run_experiment


@pytest.mark.benchmark(group="E12-candidates")
def test_e12_candidates(benchmark):
    result = benchmark.pedantic(
        run_experiment, args=("E12", "quick"), rounds=1, iterations=1
    )
    report(result)
    spikes = result.data["spikes"]
    ds = sorted(spikes["max-based"])
    small, large = ds[0], ds[-1]
    # max-based distance-1 spike scales with D ...
    assert spikes["max-based"][large] > 2.0 * spikes["max-based"][small]
    # ... while the gradient candidates stay within a flat budget.
    for name in ("slewing-max", "bounded-catch-up"):
        assert spikes[name][large] < spikes["max-based"][large] / 2.0
