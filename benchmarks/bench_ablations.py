"""Ablation benches for the design choices DESIGN.md calls out.

* shrink factor ``B`` of the Theorem 8.1 driver (the proof's
  ``384 tau f(1)``, parameterized here);
* gossip radius of the attacked algorithm (oracle-stacking soundness
  requires ``tau >= radius``);
* the gradient candidate's ``kappa`` budget (local skew vs. global
  tightness trade-off);
* simulator event throughput (substrate cost model).
"""

import pytest

from repro.algorithms import BoundedCatchUpAlgorithm, MaxBasedAlgorithm
from repro.analysis.reporting import Table
from repro.experiments.common import drifted_rates
from repro.gcs.lower_bound import LowerBoundAdversary
from repro.sim.messages import UniformRandomDelay
from repro.sim.simulator import SimConfig, run_simulation
from repro.topology.generators import line


@pytest.mark.benchmark(group="ablation-shrink")
@pytest.mark.parametrize("shrink", [2, 4, 8])
def test_ablation_shrink_factor(benchmark, shrink):
    """The forced skew is insensitive to B (the proof's asymptotics claim)."""

    def construct():
        return LowerBoundAdversary(16, rho=0.5, shrink=shrink, seed=0).run(
            MaxBasedAlgorithm()
        )

    result = benchmark.pedantic(construct, rounds=1, iterations=1)
    print(
        f"\nshrink B={shrink}: rounds={result.rounds_applied} "
        f"peak adjacent skew={result.peak_adjacent_skew:.3f}"
    )
    assert result.final_adjacent_skew > 0.1


@pytest.mark.benchmark(group="ablation-radius")
@pytest.mark.parametrize("radius", [1.0, 2.0])
def test_ablation_comm_radius(benchmark, radius):
    """The construction lands regardless of the gossip radius (rho such
    that tau >= radius keeps the oracle stack sound)."""

    def construct():
        return LowerBoundAdversary(
            16, rho=0.4, shrink=4, comm_radius=radius, seed=0
        ).run(MaxBasedAlgorithm())

    result = benchmark.pedantic(construct, rounds=1, iterations=1)
    print(
        f"\nradius={radius}: peak adjacent skew="
        f"{result.peak_adjacent_skew:.3f}"
    )
    assert result.final_adjacent_skew > 0.05


@pytest.mark.benchmark(group="ablation-kappa")
def test_ablation_kappa(benchmark):
    """kappa trades local smoothness against global tightness."""
    topo = line(13)

    def sweep():
        table = Table(
            title="ablation: bounded-catch-up kappa",
            headers=["kappa", "f(1)", "f(D)"],
        )
        out = {}
        for kappa in (0.5, 1.0, 2.0, 4.0):
            alg = BoundedCatchUpAlgorithm(period=0.5, kappa=kappa, mu=0.5)
            ex = run_simulation(
                topo,
                alg.processes(topo),
                SimConfig(duration=60.0, rho=0.2, seed=3),
                rate_schedules=drifted_rates(topo, rho=0.2, seed=3),
                delay_policy=UniformRandomDelay(),
            )
            profile = ex.gradient_profile()
            table.add_row(kappa, profile[1.0], profile[12.0])
            out[kappa] = profile
        print("\n" + table.render())
        return out

    profiles = benchmark.pedantic(sweep, rounds=1, iterations=1)
    # Larger kappa -> looser local sync (weak monotonicity, generous slack).
    assert profiles[4.0][1.0] >= profiles[0.5][1.0] - 0.5


@pytest.mark.benchmark(group="ablation-rho")
@pytest.mark.parametrize("rho", [0.125, 0.25, 0.5])
def test_ablation_drift_bound(benchmark, rho):
    """The construction lands for any drift bound; per-round real-time
    shrink is span/(4+2rho), so gains are rho-insensitive while the
    execution length scales with tau = 1/rho."""

    def construct():
        return LowerBoundAdversary(16, rho=rho, shrink=4, seed=0).run(
            MaxBasedAlgorithm()
        )

    result = benchmark.pedantic(construct, rounds=1, iterations=1)
    print(
        f"\nrho={rho}: duration={result.final_execution.duration:.0f} "
        f"peak adjacent skew={result.peak_adjacent_skew:.3f}"
    )
    assert result.final_adjacent_skew > 0.05


@pytest.mark.benchmark(group="substrate-throughput")
def test_simulator_event_throughput(benchmark):
    """Raw substrate cost: events per second on a 33-node line."""
    topo = line(33)
    alg = MaxBasedAlgorithm(period=1.0)

    def run():
        return run_simulation(
            topo,
            alg.processes(topo),
            SimConfig(duration=50.0, rho=0.5, seed=0),
        )

    ex = benchmark(run)
    assert len(ex.trace) > 1000
