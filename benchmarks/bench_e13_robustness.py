"""E13 — robustness under faults & churn (beyond the paper's model)."""

import pytest

from conftest import report
from repro.experiments import run_experiment


@pytest.mark.benchmark(group="E13-robustness")
def test_e13_robustness(benchmark):
    result = benchmark.pedantic(
        run_experiment, args=("E13", "quick"), kwargs={"workers": 2},
        rounds=1, iterations=1,
    )
    report(result)
    rows = result.tables[0].as_dicts()
    assert rows
    # Baselines anchor at exactly 1x; harsher rungs never improve the
    # fault-free final skew by more than noise.
    for row in rows:
        if row["fault"] == "none":
            assert float(row["x baseline"]) == pytest.approx(1.0)
        assert float(row["final_skew"]) >= 0.0
    # Churn must measurably hurt at least one algorithm somewhere.
    churn = [r for r in rows if r["fault"].startswith("churn")]
    assert churn and any(float(r["x baseline"]) > 1.05 for r in churn)
