"""Live runtime throughput: virtual-time scheduling rate, asyncio overhead.

Run with pytest (``python -m pytest benchmarks/bench_rt.py -s``) or
directly (``python benchmarks/bench_rt.py``).  Two measurements:

* **virtual-time scheduler events/sec** — a long gradient run on the
  deterministic virtual-time transport, reported as dispatched events
  per second.  This is the runtime's scale vehicle: the same adapter
  path the wall-clock backends use, minus the sleeping, so its
  throughput bounds how much experiment the runtime can host per core.
* **asyncio end-to-end wall clock** — a wall-clock run at a known
  ``time_scale``; the interesting number is *overhead*: measured wall
  time over the ideal ``duration * time_scale``.  The loop must track
  real time, so overhead beyond a few tens of percent would mean the
  transport is falling behind its own schedule.
"""

from __future__ import annotations

import sys
import time

from repro.analysis.reporting import Table
from repro.rt import LiveNode, LiveRunConfig, run_live
from repro.rt.recorder import LiveRecorder
from repro.rt.virtual import VirtualTimeTransport
from repro.sweep.families import (
    algorithm_from_spec,
    delay_policy_from_spec,
    rates_from_spec,
    topology_from_spec,
)

#: Virtual-run shape: long enough that per-event cost dominates setup.
VIRTUAL_CONFIG = LiveRunConfig(
    topology="line:16",
    algorithm="gradient:0.5",
    rates="drifted",
    delays="uniform",
    duration=200.0,
    rho=0.2,
    seed=0,
    transport="virtual",
    record_trace=False,
)

ASYNCIO_CONFIG = LiveRunConfig(
    topology="line:6",
    algorithm="gradient",
    duration=10.0,
    rho=0.2,
    seed=0,
    transport="asyncio",
    time_scale=0.05,
)

#: Floor for the virtual scheduler; real numbers are far higher — this
#: only catches pathological regressions (e.g. quadratic dispatch).
MIN_EVENTS_PER_SEC = 5_000

#: Allowed asyncio wall-clock overhead factor over duration*time_scale.
MAX_ASYNCIO_OVERHEAD = 2.0


def test_virtual_events_per_sec():
    # Drive the transport directly (the run_live plumbing minus the
    # Execution assembly) so events_processed is the measured quantity.
    cfg = VIRTUAL_CONFIG
    topology = topology_from_spec(cfg.topology)
    schedules = rates_from_spec(
        cfg.rates, topology, rho=cfg.rho, seed=cfg.seed, horizon=cfg.duration
    )
    recorder = LiveRecorder(record_trace=False)
    transport = VirtualTimeTransport(
        recorder=recorder,
        delay_policy=delay_policy_from_spec(cfg.delays),
        seed=cfg.seed,
    )
    processes = algorithm_from_spec(cfg.algorithm).processes(topology)
    nodes = {
        n: LiveNode(
            n, processes[n], topology=topology, schedule=schedules[n],
            rho=cfg.rho, seed=cfg.seed, transport=transport, recorder=recorder,
        )
        for n in topology.nodes
    }
    start = time.perf_counter()
    transport.run(nodes, cfg.duration)
    elapsed = time.perf_counter() - start
    events_per_sec = transport.events_processed / elapsed

    table = Table(
        title="bench_rt: virtual-time scheduler throughput",
        headers=["metric", "value"],
        caption=f"{cfg.topology}, {cfg.duration} sim units of "
        f"{cfg.algorithm}; floor {MIN_EVENTS_PER_SEC} events/s.",
    )
    table.add_row("wall seconds", round(elapsed, 3))
    table.add_row("events dispatched", transport.events_processed)
    table.add_row("messages sent", len(recorder.messages))
    table.add_row("events/sec", int(events_per_sec))
    print("\n" + table.render())
    assert events_per_sec >= MIN_EVENTS_PER_SEC, (
        f"virtual scheduler only {events_per_sec:.0f} events/s"
    )


def test_asyncio_end_to_end():
    ideal = ASYNCIO_CONFIG.duration * ASYNCIO_CONFIG.time_scale
    start = time.perf_counter()
    execution = run_live(ASYNCIO_CONFIG)
    elapsed = time.perf_counter() - start
    overhead = elapsed / ideal

    table = Table(
        title="bench_rt: asyncio backend end-to-end wall clock",
        headers=["metric", "value"],
        caption=f"{ASYNCIO_CONFIG.topology}, {ASYNCIO_CONFIG.duration} sim "
        f"units at time_scale {ASYNCIO_CONFIG.time_scale}; overhead cap "
        f"{MAX_ASYNCIO_OVERHEAD}x ideal.",
    )
    table.add_row("ideal seconds", round(ideal, 3))
    table.add_row("wall seconds", round(elapsed, 3))
    table.add_row("overhead", round(overhead, 3))
    table.add_row("messages delivered", len(execution.messages))
    table.add_row("final max skew", round(execution.max_skew(execution.duration), 4))
    print("\n" + table.render())
    assert overhead <= MAX_ASYNCIO_OVERHEAD, (
        f"asyncio backend took {overhead:.2f}x its ideal wall time"
    )


if __name__ == "__main__":  # pragma: no cover
    test_virtual_events_per_sec()
    test_asyncio_end_to_end()
    print("\nbench_rt: ok")
    sys.exit(0)
