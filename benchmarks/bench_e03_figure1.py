"""E03 — Figure 1: the staircase of rate-gamma windows."""

import pytest

from conftest import report
from repro.experiments import run_experiment


@pytest.mark.benchmark(group="E03-figure1")
def test_e03_figure1(benchmark):
    result = benchmark.pedantic(
        run_experiment, args=("E03", "quick"), rounds=1, iterations=1
    )
    report(result)
    windows = result.data["windows"]
    knees = [w[0] for w in windows.values()]
    # The staircase: knees nondecreasing along the ramp.
    assert knees == sorted(knees)
