"""E02 — Theorem 8.1: forced distance-1 skew grows with the diameter."""

import pytest

from conftest import report
from repro.experiments import run_experiment


@pytest.mark.benchmark(group="E02-lower-bound")
def test_e02_lower_bound(benchmark):
    result = benchmark.pedantic(
        run_experiment, args=("E02", "quick"), rounds=1, iterations=1
    )
    report(result)
    for algorithm, series in result.data["series"].items():
        ds = sorted(series)
        # Monotone growth with diameter: synchronization is not local.
        assert series[ds[-1]] >= series[ds[0]] - 1e-9, algorithm
