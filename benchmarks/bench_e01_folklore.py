"""E01 — folklore ``f(d) = Omega(d)`` (Section 5, item 1)."""

import pytest

from conftest import report
from repro.experiments import run_experiment


@pytest.mark.benchmark(group="E01-folklore")
def test_e01_folklore(benchmark):
    result = benchmark.pedantic(
        run_experiment, args=("E01", "quick"), rounds=1, iterations=1
    )
    report(result)
    series = result.data["series"]["max-based"]
    ds = sorted(series)
    # Omega(d): forced skew grows with d and clears the d/12 guarantee.
    assert series[ds[-1]] > series[ds[0]]
    for d, skew in series.items():
        assert skew >= d / 12.0 - 1e-6
