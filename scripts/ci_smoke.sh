#!/usr/bin/env bash
# CI smoke: tier-1 tests, then one quick-scale parallel sweep end-to-end,
# then the fault/robustness suite (E13 + the `faults`-marked tests),
# then the sweep-engine benchmark (serial-vs-parallel + cache recall).
#
# Usage: bash scripts/ci_smoke.sh
# Documented in README.md ("Tests and benchmarks").

set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1: full test suite =="
python -m pytest -x -q

echo
echo "== quick-scale parallel sweep (end-to-end) =="
ARTIFACTS="$(mktemp -d)"
trap 'rm -rf "$ARTIFACTS"' EXIT
python -m repro.experiments sweep --quick --seeds 1 --duration 10 \
    --workers 2 --cache-dir "$ARTIFACTS/cache" --json-out "$ARTIFACTS/sweep.json"
# Re-run against the warm cache: must be all hits.
python -m repro.experiments sweep --quick --seeds 1 --duration 10 \
    --workers 2 --cache-dir "$ARTIFACTS/cache" | grep -q "0 miss(es)" \
    || { echo "error: warm sweep re-ran jobs instead of hitting the cache" >&2; exit 1; }

echo
echo "== fault & churn robustness suite =="
# The fault suite is independently selectable: -m faults runs it alone,
# -m 'not faults' skips it when iterating on unrelated code.
python -m pytest -q -m faults tests/
python -m repro.experiments E13 --scale quick --workers 2 > "$ARTIFACTS/e13.txt"
grep -q "x baseline" "$ARTIFACTS/e13.txt" \
    || { echo "error: E13 produced no degradation table" >&2; exit 1; }
# The fault axis end-to-end through the sweep CLI.
python -m repro.experiments sweep --topologies line:5 --algorithms max-based \
    --rates drifted --faults none,loss:0.3,crash-recover:0.3,4 \
    --seeds 1 --duration 8 --workers 2 > "$ARTIFACTS/fault_sweep.txt"
grep -q "3 fault families" "$ARTIFACTS/fault_sweep.txt" \
    || { echo "error: sweep CLI did not expand the fault axis" >&2; exit 1; }

echo
echo "== sweep engine benchmark =="
python benchmarks/bench_sweep.py

echo
echo "ci_smoke: all green"
