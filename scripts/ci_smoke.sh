#!/usr/bin/env bash
# CI smoke: the static invariant linter (repro.check over the full
# tree, < 10s, zero findings), then tier-1 tests, then one quick-scale
# parallel sweep end-to-end,
# then the fault/robustness suite (E13 + the `faults`-marked tests),
# then the live runtime (a <=10s virtual-time demo, a UDP E14 quick cell,
# a multiplexed router cell with live churn, the crash-failure
# regression, and the E14 sim-vs-live table), then the batched-vs-scalar
# engine
# differential check, the scale experiment E15, the mobility experiment
# E16 (dynamic topologies end-to-end), the observability layer
# (repro.viz: a headless dashboard + mobility animation, the sweep
# report artifact, and a live router run streaming rolling tail
# panels), the sweep service (repro.serve: start the daemon, submit a
# 3-cell grid, fetch the tables, shut down cleanly, all within a 30s
# budget), the docs step (module doctests + markdown link check), and
# the engine/analysis benchmarks (bench_analysis records
# BENCH_analysis.json, bench_sim BENCH_sim.json with its >= 5x
# at-scale speedup floor, bench_viz BENCH_viz.json with its rendering
# cells/second floor, bench_serve BENCH_serve.json with its cold/warm
# jobs-per-second floors).
#
# Usage: bash scripts/ci_smoke.sh
# Documented in README.md ("Tests and benchmarks").

set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== static invariant linter (repro.check) =="
# The full-tree walk is pure stdlib-ast parsing and must stay fast:
# budget 10s, and the committed baseline is empty so any finding fails.
timeout 10 python -m repro.check src --baseline check_baseline.json \
    || { echo "error: repro-check found new invariant violations" >&2; exit 1; }

echo
echo "== tier-1: full test suite =="
python -m pytest -x -q

echo
echo "== quick-scale parallel sweep (end-to-end) =="
ARTIFACTS="$(mktemp -d)"
export ARTIFACTS  # the serve lifecycle step runs in a `timeout` subshell
trap 'rm -rf "$ARTIFACTS"' EXIT
python -m repro.experiments sweep --quick --seeds 1 --duration 10 \
    --workers 2 --cache-dir "$ARTIFACTS/cache" --json-out "$ARTIFACTS/sweep.json"
# Re-run against the warm cache: must be all hits.
python -m repro.experiments sweep --quick --seeds 1 --duration 10 \
    --workers 2 --cache-dir "$ARTIFACTS/cache" | grep -q "0 miss(es)" \
    || { echo "error: warm sweep re-ran jobs instead of hitting the cache" >&2; exit 1; }

echo
echo "== fault & churn robustness suite =="
# The fault suite is independently selectable: -m faults runs it alone,
# -m 'not faults' skips it when iterating on unrelated code.
python -m pytest -q -m faults tests/
python -m repro.experiments E13 --scale quick --workers 2 > "$ARTIFACTS/e13.txt"
grep -q "x baseline" "$ARTIFACTS/e13.txt" \
    || { echo "error: E13 produced no degradation table" >&2; exit 1; }
# The fault axis end-to-end through the sweep CLI.
python -m repro.experiments sweep --topologies line:5 --algorithms max-based \
    --rates drifted --faults none,loss:0.3,crash-recover:0.3,4 \
    --seeds 1 --duration 8 --workers 2 > "$ARTIFACTS/fault_sweep.txt"
grep -q "3 fault families" "$ARTIFACTS/fault_sweep.txt" \
    || { echo "error: sweep CLI did not expand the fault axis" >&2; exit 1; }

echo
echo "== live runtime (repro.rt) =="
# A virtual-time live demo: 10 sim units, milliseconds of wall clock.
python -m repro.experiments live --alg gradient --topology line --nodes 8 \
    --transport virtual --duration 10 > "$ARTIFACTS/live_virtual.txt"
grep -q "live-virtual" "$ARTIFACTS/live_virtual.txt" \
    || { echo "error: virtual live demo produced no summary" >&2; exit 1; }
# One E14 quick cell on the UDP backend: one OS process per node,
# bounded skew, well under the 30s budget.
timeout 30 python -m repro.experiments live --alg gradient --topology line \
    --nodes 4 --transport udp --duration 6 --time-scale 0.2 \
    > "$ARTIFACTS/live_udp.txt"
grep -q "live-udp" "$ARTIFACTS/live_udp.txt" \
    || { echo "error: udp live cell produced no summary" >&2; exit 1; }
# A router cell with live churn: 32 nodes multiplexed onto worker
# processes, a crash-recover fault plan applied to real frames.
timeout 30 python -m repro.experiments live --alg gradient --topology line \
    --nodes 32 --transport router --duration 6 --time-scale 0.1 \
    --faults crash-recover:0.3,2 > "$ARTIFACTS/live_router.txt"
grep -q "live-router" "$ARTIFACTS/live_router.txt" \
    || { echo "error: router live cell produced no summary" >&2; exit 1; }
grep -q "fault events" "$ARTIFACTS/live_router.txt" \
    || { echo "error: router live cell reported no fault events" >&2; exit 1; }
# The failure-handling regression: a deliberately killed node process
# must fail the run promptly with a descriptive RtError (the old
# runtime hung out its whole report budget, then died on EOFError).
timeout 60 python -m pytest -q -m rt \
    tests/test_rt_router.py -k "FailureHandling or dead_worker" \
    || { echo "error: rt failure-handling regression failed" >&2; exit 1; }
# The sim-vs-live comparison table end to end.
python -m repro.experiments E14 --scale quick > "$ARTIFACTS/e14.txt"
grep -q "d final vs sim" "$ARTIFACTS/e14.txt" \
    || { echo "error: E14 produced no comparison table" >&2; exit 1; }
if grep -q " NO " "$ARTIFACTS/e14.txt"; then
    echo "error: an E14 cell blew the skew bound" >&2; exit 1
fi

echo
echo "== simulation engine differential check (scalar vs batched) =="
# The quick cut of the byte-identity contract: the engine-marked
# differential suite (full algorithm x topology x fault x mobility grid
# plus hypothesis scenarios; also reruns the fault-parity and replay
# round-trip guards carrying the marker).
python -m pytest -q -m engine tests/

echo
echo "== gradient profiles at scale (E15, vectorized analysis core) =="
# Quick scale reaches D = 128 and must fit the 60s CI budget.
timeout 60 python -m repro.experiments E15 --scale quick > "$ARTIFACTS/e15.txt"
grep -q "field s" "$ARTIFACTS/e15.txt" \
    || { echo "error: E15 produced no timing table" >&2; exit 1; }

echo
echo "== mobility & dynamic topologies (E16) =="
# Quick scale: speed ladder + re-convergence table, well under 60s.
timeout 60 python -m repro.experiments E16 --scale quick --workers 2 \
    > "$ARTIFACTS/e16.txt"
grep -q "re-convergence after rewiring" "$ARTIFACTS/e16.txt" \
    || { echo "error: E16 produced no re-convergence table" >&2; exit 1; }
grep -q "rewirings" "$ARTIFACTS/e16.txt" \
    || { echo "error: E16 produced no mobility ladder" >&2; exit 1; }
# The mobility axis end-to-end through the sweep CLI.
python -m repro.experiments sweep --topologies line:5 --algorithms max-based \
    --rates drifted --mobility static,waypoint:0.5,4 \
    --seeds 1 --duration 8 --workers 2 > "$ARTIFACTS/mobility_sweep.txt"
grep -q "2 mobility families" "$ARTIFACTS/mobility_sweep.txt" \
    || { echo "error: sweep CLI did not expand the mobility axis" >&2; exit 1; }

echo
echo "== observability (repro.viz) =="
# A dashboard + mobility animation from a faulted mobile run, rendered
# headlessly (no display, stdlib-only SVG).
python -m repro.experiments viz dashboard --topology line:16 --alg gradient \
    --faults crash-recover:0.25,3 --mobility waypoint:0.5 --duration 8 \
    --seed 2 --out "$ARTIFACTS/viz" > "$ARTIFACTS/viz.txt"
test -s "$ARTIFACTS/viz/dashboard.svg" \
    || { echo "error: viz dashboard wrote no dashboard.svg" >&2; exit 1; }
test -s "$ARTIFACTS/viz/mobility.svg" \
    || { echo "error: viz dashboard wrote no mobility.svg" >&2; exit 1; }
# The sweep artifact from the first step, rendered as a report.
python -m repro.experiments viz report "$ARTIFACTS/sweep.json" \
    --out "$ARTIFACTS/viz" >> "$ARTIFACTS/viz.txt"
test -s "$ARTIFACTS/viz/report.svg" \
    || { echo "error: viz report wrote no report.svg" >&2; exit 1; }
# A live router run with the streaming tail attached: rolling panels
# are written into the directory *while* the run is still going.
timeout 30 python -m repro.experiments live --alg gradient --topology ring \
    --nodes 8 --transport router --duration 4 --time-scale 0.05 \
    --tail "$ARTIFACTS/tail" > "$ARTIFACTS/live_tail.txt"
grep -q "tail frames streamed" "$ARTIFACTS/live_tail.txt" \
    || { echo "error: live --tail reported no streamed frames" >&2; exit 1; }
ls "$ARTIFACTS/tail"/tail_*.svg > /dev/null 2>&1 \
    || { echo "error: live --tail wrote no rolling panels" >&2; exit 1; }

echo
echo "== sweep as a service (repro.serve) =="
# Full daemon lifecycle inside one 30s budget: start against a fresh
# store, submit a 3-cell grid through the experiments verb, block until
# it settles, fetch the rendered tables, query status, stop cleanly.
timeout 30 bash -c '
    set -euo pipefail
    STORE="$ARTIFACTS/serve_store"
    python -m repro.experiments serve start --store "$STORE" --workers 2 \
        > "$ARTIFACTS/serve_daemon.txt" &
    SERVE_PID=$!
    python -m repro.experiments serve submit --store "$STORE" \
        --topologies line:5 --algorithms max-based --rates drifted \
        --seeds 3 --duration 8 --name ci --wait > "$ARTIFACTS/serve_submit.txt"
    SWEEP="$(sed -n "s/^sweep \([0-9a-f]*\):.*/\1/p" "$ARTIFACTS/serve_submit.txt" | head -1)"
    test -n "$SWEEP"
    python -m repro.experiments serve fetch --store "$STORE" "$SWEEP" \
        > "$ARTIFACTS/serve_fetch.txt"
    grep -q "max_skew" "$ARTIFACTS/serve_fetch.txt"
    python -m repro.experiments serve status --store "$STORE" "$SWEEP" \
        | grep -q "3/3 done"
    python -m repro.experiments serve stop --store "$STORE"
    wait "$SERVE_PID"
' || { echo "error: serve daemon lifecycle failed or blew the 30s budget" >&2; exit 1; }
grep -q "repro-serve stopped" "$ARTIFACTS/serve_daemon.txt" \
    || { echo "error: serve daemon did not shut down cleanly" >&2; exit 1; }

echo
echo "== docs: module doctests + markdown link check =="
# Every module docstring example is runnable documentation; the paths
# below are the modules the docs contract names (repro.topology.* and
# repro.sweep.spec).
python -m doctest src/repro/topology/base.py src/repro/topology/generators.py \
    src/repro/topology/dynamic.py src/repro/sweep/spec.py
# Relative markdown links in README.md and docs/ARCHITECTURE.md must
# point at files that exist.
python - <<'PY'
import re, sys
from pathlib import Path

bad = []
for doc in (Path("README.md"), Path("docs/ARCHITECTURE.md")):
    for target in re.findall(r"\]\(([^)#]+)(?:#[^)]*)?\)", doc.read_text()):
        if "://" in target:
            continue
        if not (doc.parent / target).exists():
            bad.append(f"{doc}: {target}")
if bad:
    print("broken markdown links:\n  " + "\n  ".join(bad), file=sys.stderr)
    sys.exit(1)
print("markdown links ok")
PY

echo
echo "== analysis core benchmark (scalar vs batched, >= 10x) =="
python benchmarks/bench_analysis.py
test -s BENCH_analysis.json \
    || { echo "error: bench_analysis wrote no BENCH_analysis.json" >&2; exit 1; }

echo
echo "== simulation engine benchmark (scalar vs batched, >= 5x at-scale) =="
python benchmarks/bench_sim.py
test -s BENCH_sim.json \
    || { echo "error: bench_sim wrote no BENCH_sim.json" >&2; exit 1; }

echo
echo "== sweep engine benchmark =="
python benchmarks/bench_sweep.py

echo
echo "== live runtime benchmark =="
python benchmarks/bench_rt.py

echo
echo "== router scale-ladder benchmark (writes BENCH_rt.json) =="
python benchmarks/bench_rt_router.py
test -s BENCH_rt.json \
    || { echo "error: bench_rt_router wrote no BENCH_rt.json" >&2; exit 1; }

echo
echo "== viz rendering benchmark (writes BENCH_viz.json) =="
python benchmarks/bench_viz.py
test -s BENCH_viz.json \
    || { echo "error: bench_viz wrote no BENCH_viz.json" >&2; exit 1; }

echo
echo "== sweep service benchmark (writes BENCH_serve.json) =="
python benchmarks/bench_serve.py
test -s BENCH_serve.json \
    || { echo "error: bench_serve wrote no BENCH_serve.json" >&2; exit 1; }

echo
echo "ci_smoke: all green"
