#!/usr/bin/env bash
# CI smoke: tier-1 tests, then one quick-scale parallel sweep end-to-end,
# then the sweep-engine benchmark (serial-vs-parallel + cache recall).
#
# Usage: bash scripts/ci_smoke.sh
# Documented in README.md ("Tests and benchmarks").

set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1: full test suite =="
python -m pytest -x -q

echo
echo "== quick-scale parallel sweep (end-to-end) =="
ARTIFACTS="$(mktemp -d)"
trap 'rm -rf "$ARTIFACTS"' EXIT
python -m repro.experiments sweep --quick --seeds 1 --duration 10 \
    --workers 2 --cache-dir "$ARTIFACTS/cache" --json-out "$ARTIFACTS/sweep.json"
# Re-run against the warm cache: must be all hits.
python -m repro.experiments sweep --quick --seeds 1 --duration 10 \
    --workers 2 --cache-dir "$ARTIFACTS/cache" | grep -q "0 miss(es)" \
    || { echo "error: warm sweep re-ran jobs instead of hitting the cache" >&2; exit 1; }

echo
echo "== sweep engine benchmark =="
python benchmarks/bench_sweep.py

echo
echo "ci_smoke: all green"
