#!/usr/bin/env python
"""TDMA vs network growth (the paper's headline implication).

    "the TDMA protocol with a fixed slot granularity will fail as the
     network grows, even if the maximum degree of each node stays
     constant."

This example keeps the slot width, guard band, and node degree fixed
while the line network's diameter grows, and overlays the TDMA schedule
on (a) quiet executions and (b) executions forced by the Theorem 8.1
adversary.  Collisions appear exactly when forced adjacent skew crosses
the guard margin.

Run:  python examples/tdma_scaling.py
"""

from repro import MaxBasedAlgorithm, line
from repro.analysis import Table
from repro.apps.tdma import assign_slots, evaluate_tdma
from repro.gcs import AdversarySchedule, LowerBoundAdversary

SLOT_WIDTH = 1.0
GUARD = 0.2
RHO = 0.5


def main() -> None:
    table = Table(
        title=f"TDMA collisions (slot width {SLOT_WIDTH}, guard {GUARD}, degree 2)",
        headers=["diameter D", "execution", "collisions", "peak adj skew"],
    )
    algorithm = MaxBasedAlgorithm()
    for diameter in (8, 16, 32, 64):
        topology = line(diameter + 1)
        schedule = assign_slots(topology, slot_width=SLOT_WIDTH, guard=GUARD)

        quiet_exec = AdversarySchedule.quiet(topology.nodes, 4.0 * diameter).run(
            topology, algorithm, rho=RHO
        )
        quiet_report = evaluate_tdma(quiet_exec, schedule)
        table.add_row(
            diameter,
            "quiet",
            quiet_report.collisions,
            quiet_exec.max_adjacent_skew(quiet_exec.duration),
        )

        forced = LowerBoundAdversary(diameter, rho=RHO, shrink=4).run(algorithm)
        forced_report = evaluate_tdma(forced.final_execution, schedule)
        table.add_row(
            diameter,
            "adversarial",
            forced_report.collisions,
            forced.peak_adjacent_skew,
        )
    print(table.render())
    print(
        "\nThe frame never grows (greedy coloring of a degree-2 graph is "
        "2 slots), yet collisions appear and multiply with the diameter: "
        "fixed-granularity TDMA cannot scale."
    )


if __name__ == "__main__":
    main()
