#!/usr/bin/env python
"""A mobile sensor field: the gradient property while the network moves.

The paper bounds skew between two nodes by a function of their *current*
distance; every other example in this repo runs on a frozen graph.  Here
the graph moves:

1. build random-waypoint mobility (nodes drifting through a square,
   links forming within a communication radius) as a DynamicTopology —
   a time-indexed sequence of topology snapshots;
2. run the gradient candidate (bounded-catch-up) on it: the simulator
   atomically swaps the distance/adjacency tables at every change-point
   while messages already in flight keep their assigned delays;
3. measure — the execution records its topology timeline, so the skew
   field, the empirical gradient profile, and check_gradient all
   evaluate against the distances that were live at each instant.

Run:  python examples/mobile_field.py
"""

from repro.algorithms import BoundedCatchUpAlgorithm
from repro.analysis.field import SkewField
from repro.gcs.properties import GradientBound, check_gradient
from repro.sim.messages import UniformRandomDelay
from repro.sim.simulator import SimConfig, run_simulation
from repro.sweep.families import drifted_rates
from repro.topology.dynamic import components, random_waypoint

N = 12
DURATION = 30.0
RHO = 0.2


def build() -> object:
    print("=== 1. random-waypoint mobility ===")
    dyn = random_waypoint(
        N, speed=0.8, comm_radius=2.5, duration=DURATION, interval=5.0, seed=7
    )
    print(f"{dyn.name}: {len(dyn)} snapshots, change-points at "
          f"{[round(t, 1) for t in dyn.change_times]}")
    for t, topo in dyn.snapshots:
        parts = components(topo)
        print(f"  t={t:5.1f}  diameter={topo.diameter:5.2f}  "
              f"edges={len(topo.comm_edges):2d}  components={len(parts)}")
    print()
    return dyn


def simulate(dyn):
    print("=== 2. gradient candidate on the moving network ===")
    algorithm = BoundedCatchUpAlgorithm()
    execution = run_simulation(
        dyn,
        algorithm.processes(dyn.initial),
        SimConfig(duration=DURATION, rho=RHO, seed=7),
        rate_schedules=drifted_rates(dyn.initial, rho=RHO, seed=7),
        delay_policy=UniformRandomDelay(),
    )
    rewirings = len(execution.topology_timeline) - 1
    print(f"simulated {DURATION:g} time units, {len(execution.messages)} "
          f"messages, {rewirings} rewirings")
    execution.check_delay_bounds()   # delays vs the topology at send time
    print("every delay inside [0, d_ij] of the network live at send time")
    print()
    return execution


def measure(execution) -> None:
    print("=== 3. time-varying measurement ===")
    field = SkewField(execution, execution.sample_times(0.5))
    print("adjacent skew around each rewiring (the re-tightening story):")
    for t, _ in execution.topology_timeline[1:]:
        k = int((field.times >= t).argmax())
        before = field.max_adjacent_series()[max(k - 1, 0)]
        after_window = field.max_adjacent_series()[k: k + 8]
        print(f"  rewiring at t={t:5.1f}: adj skew {before:5.3f} before, "
              f"peak {after_window.max():5.3f} just after, "
              f"{after_window[-1]:5.3f} eight samples later")
    profile = field.gradient_profile()
    smallest, largest = min(profile), max(profile)
    print(f"empirical gradient profile over live distances: "
          f"f({smallest:g})={profile[smallest]:.3f} ... "
          f"f({largest:g})={profile[largest]:.3f}")
    bound = GradientBound.linear(2.0 * RHO, 1.0)
    violations = check_gradient(execution, bound)
    print(f"check_gradient vs f(d)={bound.label} against time-varying "
          f"distances: {len(violations)} violation(s)")


if __name__ == "__main__":
    dyn = build()
    execution = simulate(dyn)
    measure(execution)
