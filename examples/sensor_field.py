#!/usr/bin/env python
"""A random sensor field: the gradient in its natural habitat.

Footnote 2 of the paper motivates treating Euclidean distance as delay
uncertainty: multi-hop paths between far-apart sensors accumulate
uncertainty proportional to their separation.  This example builds a
random geometric sensor field, runs the algorithm suite, and prints
each algorithm's empirical gradient profile binned by distance — the
skew-vs-distance picture the whole paper is about, on the kind of
network (a sensor deployment) the introduction targets.

Run:  python examples/sensor_field.py
"""

from collections import defaultdict

from repro import SimConfig, UniformRandomDelay, random_geometric, run_simulation
from repro.algorithms import (
    BoundedCatchUpAlgorithm,
    MaxBasedAlgorithm,
    NullAlgorithm,
    SlewingMaxAlgorithm,
)
from repro.analysis import Table
from repro.experiments.common import drifted_rates

RHO = 0.15
DURATION = 90.0
BINS = (2.0, 4.0, 8.0, 16.0, 1e9)


def binned_profile(execution) -> dict[float, float]:
    """Max skew per distance bin (upper edges in BINS)."""
    worst: dict[float, float] = defaultdict(float)
    snapshots = [
        execution.logical_snapshot(t) for t in execution.sample_times(5.0)
    ]
    for i, j in execution.topology.pairs():
        d = execution.topology.distance(i, j)
        edge = next(b for b in BINS if d <= b)
        for snap in snapshots:
            worst[edge] = max(worst[edge], abs(snap[i] - snap[j]))
    return dict(worst)


def main() -> None:
    field = random_geometric(40, seed=5)
    print(
        f"sensor field: {field.n} nodes, diameter {field.diameter:.1f} "
        f"(delay-uncertainty units), max degree {field.max_degree}\n"
    )
    headers = ["algorithm"] + [
        f"d<={b:g}" if b < 1e9 else f"d>{BINS[-2]:g}" for b in BINS
    ]
    table = Table(
        title="max skew per distance bin (the empirical gradient)",
        headers=headers,
        caption="nearby pairs stay tight, faraway pairs drift — the "
        "gradient property in a realistic deployment",
    )
    for algorithm in (
        NullAlgorithm(),
        MaxBasedAlgorithm(period=0.5),
        SlewingMaxAlgorithm(period=0.5),
        BoundedCatchUpAlgorithm(period=0.5, kappa=0.5, mu=0.5),
    ):
        execution = run_simulation(
            field,
            algorithm.processes(field),
            SimConfig(duration=DURATION, rho=RHO, seed=5),
            rate_schedules=drifted_rates(field, rho=RHO, seed=5),
            delay_policy=UniformRandomDelay(),
        )
        execution.check_validity()
        profile = binned_profile(execution)
        table.add_row(
            algorithm.name, *(profile.get(b, 0.0) for b in BINS)
        )
    print(table.render())


if __name__ == "__main__":
    main()
