#!/usr/bin/env python
"""A guided tour of the lower-bound machinery, one lemma at a time.

Walks through exactly what the paper's proofs do, executably:

1. build the quiet execution ``alpha_0``;
2. apply the **Add Skew lemma** (Lemma 6.1) and verify every claim:
   indistinguishability, rate bounds, delay bounds, the skew gain;
3. extend quietly and watch the **Bounded Increase lemma** (Lemma 7.1)
   cap how fast the algorithm repairs the damage;
4. iterate (Theorem 8.1) until an *adjacent* pair carries the skew.

Run:  python examples/lower_bound_tour.py
"""

from repro import MaxBasedAlgorithm, line, tau
from repro.gcs import (
    AddSkewPlan,
    AdversarySchedule,
    LowerBoundAdversary,
    apply_add_skew,
    assert_indistinguishable_prefix,
    measure_bounded_increase,
    verify_add_skew_claims,
)
from repro.gcs.properties import empirical_f

RHO = 0.5
D = 16


def main() -> None:
    algorithm = MaxBasedAlgorithm()
    topology = line(D + 1)
    t = tau(RHO)

    print(f"=== step 1: alpha_0 — quiet execution, duration tau*D = {t * D:g} ===")
    schedule = AdversarySchedule.quiet(topology.nodes, t * D)
    alpha = schedule.run(topology, algorithm, rho=RHO)
    print(f"skew(0, {D}) at end: {alpha.skew(0, D, alpha.duration):+.3f} "
          "(perfectly symmetric -> zero)\n")

    print("=== step 2: Add Skew (Lemma 6.1) on the pair (0, D) ===")
    plan = AddSkewPlan(
        i=0, j=D, n=D + 1, alpha_duration=schedule.duration, rho=RHO
    )
    print(f"window [S, T] = [{plan.window_start:g}, {plan.window_end:g}], "
          f"T' = {plan.beta_end:g}, gamma = {plan.gamma:.4f}")
    beta_schedule = apply_add_skew(schedule, plan)
    beta = beta_schedule.run(topology, algorithm, rho=RHO)

    assert_indistinguishable_prefix(alpha, beta)
    print("Claim 6.2 (indistinguishability): verified on the actual traces")
    summary = verify_add_skew_claims(alpha, beta, plan)
    print(f"Claims 6.3-6.4 (rate/delay bounds):  verified")
    print(f"Claim 6.5 (skew gain): measured {summary['gain']:.3f} "
          f">= guaranteed {summary['guaranteed_gain']:.3f}\n")

    print("=== step 3: quiet extension + Bounded Increase (Lemma 7.1) ===")
    pad = plan.straggler_horizon - plan.beta_end
    extended = beta_schedule.extended((D // 4) * t + pad + 1e-6)
    alpha1 = extended.run(topology, algorithm, rho=RHO)
    f_hat = empirical_f([alpha1])
    report = measure_bounded_increase(alpha1, max(f_hat[1.0], 1e-6), rho=RHO)
    print(f"fastest one-unit logical gain: {report.max_increase:.3f} "
          f"<= 16 f(1) = {report.bound:.3f}  "
          f"({'OK' if report.satisfied else 'VIOLATED'})\n")

    print("=== step 4: the full iteration (Theorem 8.1) ===")
    result = LowerBoundAdversary(D, rho=RHO, shrink=4).run(algorithm)
    for r in result.rounds:
        print(
            f"  round {r.round_index}: pair ({r.i},{r.j}) span {r.span:>3} "
            f"skew {r.skew_before:+.3f} -> {r.skew_after_round:+.3f}; "
            f"pigeonhole -> ({r.next_i},{r.next_j})"
        )
    i, j = result.final_pair
    print(
        f"\nfinal: nodes {i} and {j} (distance 1) hold "
        f"{result.final_adjacent_skew:.3f} skew — "
        f"the Omega(log D / log log D) of Theorem 8.1, forced on a real "
        f"algorithm by re-running it under warped schedules."
    )


if __name__ == "__main__":
    main()
