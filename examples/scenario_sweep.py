#!/usr/bin/env python
"""Scenario sweeps: one grid, many cores, zero nondeterminism.

Covers the three things the sweep engine does:

1. expand a declarative SweepSpec — topologies x algorithms x rate
   families x delay policies x fault families x seeds — into
   independent jobs;
2. fan the jobs across a worker pool and aggregate the metrics, with
   results identical at any worker count;
3. cache results on disk keyed by job content hash, so re-running a
   grid is (almost) free.

The fault axis ("none" vs a lossy network here; also crash-stop,
crash-recovery, duplication, reordering and link churn — see
repro.sim.faults) makes every grid a robustness experiment: each
faulted cell can be read against its fault-free sibling, which is
exactly what experiment E13 automates.

Run:  python examples/scenario_sweep.py
"""

import tempfile
import time

from repro.sweep import ResultCache, SweepSpec, run_jobs, sweep_result

SPEC = SweepSpec(
    name="example",
    topologies=("line:7", "ring:8", "grid:3,3"),
    algorithms=("max-based:0.5", "bounded-catch-up"),
    rate_families=("drifted", "wandering"),
    delay_policies=("uniform",),
    fault_families=("none", "loss:0.2"),
    seeds=(0, 1),
    duration=15.0,
    rho=0.2,
)


def expand() -> list:
    print(f"=== 1. the grid: {SPEC.size} scenario cells ===")
    jobs = SPEC.jobs()
    sample = jobs[0].params
    print(f"first cell: {sample['topology']} / {sample['algorithm']} / "
          f"{sample['rates']} / faults {sample['faults']} / "
          f"seed {sample['seed']}")
    print()
    return jobs


def fan_out(jobs) -> None:
    print("=== 2. serial vs parallel: identical metrics ===")
    serial = run_jobs(jobs, workers=1)
    parallel = run_jobs(jobs, workers=2)
    identical = [o.metrics for o in serial] == [o.metrics for o in parallel]
    print(f"metrics identical at 1 and 2 workers: {identical}")
    print()
    print(sweep_result(SPEC, serial).render())
    print()


def cache_demo(jobs) -> None:
    print("=== 3. on-disk caching ===")
    with tempfile.TemporaryDirectory() as tmp:
        t0 = time.perf_counter()
        run_jobs(jobs, workers=1, cache=ResultCache(tmp))
        cold = time.perf_counter() - t0

        warm_cache = ResultCache(tmp)
        t0 = time.perf_counter()
        run_jobs(jobs, workers=1, cache=warm_cache)
        warm = time.perf_counter() - t0
    print(f"cold run: {cold:.2f}s; warm run: {warm:.3f}s "
          f"({warm_cache.hits}/{len(jobs)} cache hits)")


if __name__ == "__main__":
    jobs = expand()
    fan_out(jobs)
    cache_demo(jobs)
