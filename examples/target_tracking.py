#!/usr/bin/env python
"""Target tracking (the paper's second motivating app).

An object moves along a line of sensors at constant velocity; each
sensor timestamps the moment it passes using its *logical* clock, and
pairs of sensors estimate the velocity as separation / timestamp-delta.
The experiment shows the introduction's gradient argument: for a fixed
accuracy target the *acceptable clock skew grows linearly with the
distance* between the cooperating sensors.

Run:  python examples/target_tracking.py
"""

from repro import MaxBasedAlgorithm, SimConfig, UniformRandomDelay, line, run_simulation
from repro.analysis import Table
from repro.apps.tracking import required_skew_for_accuracy, track_velocity
from repro.experiments.common import drifted_rates

RHO = 0.05
VELOCITY = 0.5
DURATION = 160.0


def main() -> None:
    topology = line(33)
    algorithm = MaxBasedAlgorithm(period=0.5)
    execution = run_simulation(
        topology,
        algorithm.processes(topology),
        SimConfig(duration=DURATION, rho=RHO, seed=21),
        rate_schedules=drifted_rates(topology, rho=RHO, seed=21),
        delay_policy=UniformRandomDelay(),
    )
    table = Table(
        title=f"velocity estimation, true v = {VELOCITY}",
        headers=[
            "separation",
            "estimate",
            "rel. error",
            "skew budget for 1%",
        ],
        caption="budget = skew that still allows 1% accuracy; it grows "
        "linearly with separation — the acceptable skew is a gradient.",
    )
    for separation in (1, 2, 4, 8, 16, 32):
        estimate = track_velocity(
            execution,
            0,
            separation,
            velocity=VELOCITY,
            start_time=DURATION * 0.4,
        )
        table.add_row(
            separation,
            estimate.estimated_velocity,
            estimate.relative_error,
            required_skew_for_accuracy(separation, VELOCITY),
        )
    print(table.render())
    print(
        "\nSame clocks, same skew — but the farther apart the sensors, "
        "the longer the traversal and the smaller the relative error. "
        "Tight synchronization is only needed *nearby*: gradient clock "
        "synchronization is exactly the right abstraction."
    )


if __name__ == "__main__":
    main()
