#!/usr/bin/env python
"""Live runtime walkthrough: the same algorithm in three worlds.

Covers what ``repro.rt`` adds on top of the simulator:

1. run the gradient candidate inside the discrete-event simulator;
2. run the *same unchanged process objects* on the live runtime's
   virtual-time transport and check the executions agree exactly;
3. run them again as real wall-clock asyncio tasks and measure the skew
   gap that genuine OS scheduling noise introduces.

Run:  python examples/live_run.py
"""

import time

import numpy as np

from repro import SimConfig, run_simulation
from repro.analysis import Table
from repro.rt import LiveRunConfig, run_live, with_transport
from repro.sweep.families import (
    algorithm_from_spec,
    delay_policy_from_spec,
    rates_from_spec,
    topology_from_spec,
)

SCENARIO = LiveRunConfig(
    topology="line:8",
    algorithm="gradient",
    rates="drifted",
    delays="uniform",
    duration=12.0,
    rho=0.2,
    seed=7,
    transport="virtual",
    time_scale=0.05,  # wall seconds per sim unit, for the asyncio leg
)


def simulator_baseline():
    print("=== 1. the simulator baseline ===")
    topology = topology_from_spec(SCENARIO.topology)
    algorithm = algorithm_from_spec(SCENARIO.algorithm)
    execution = run_simulation(
        topology,
        algorithm.processes(topology),
        SimConfig(duration=SCENARIO.duration, rho=SCENARIO.rho, seed=SCENARIO.seed),
        rate_schedules=rates_from_spec(
            SCENARIO.rates, topology, rho=SCENARIO.rho, seed=SCENARIO.seed,
            horizon=SCENARIO.duration,
        ),
        delay_policy=delay_policy_from_spec(SCENARIO.delays),
    )
    print(f"final max skew (sim): {execution.max_skew(SCENARIO.duration):.4f}\n")
    return execution


def virtual_twin(sim):
    print("=== 2. the live runtime on virtual time ===")
    live = run_live(SCENARIO)
    times = sim.sample_times(1.0)
    gap = float(
        np.abs(
            np.array([sim.max_skew(t) for t in times])
            - np.array([live.max_skew(t) for t in times])
        ).max()
    )
    print(f"source: {live.source}; max trajectory gap vs sim: {gap:.2e}")
    print("identical executions: the LiveNode adapter changed nothing.\n")


def asyncio_real_time(sim):
    print("=== 3. real wall-clock asyncio tasks ===")
    start = time.perf_counter()
    live = run_live(with_transport(SCENARIO, "asyncio"))
    wall = time.perf_counter() - start
    table = Table(
        title="sim vs live-asyncio",
        headers=["metric", "sim", "live-asyncio"],
        caption=f"{SCENARIO.duration} sim units in {wall:.2f}s of wall "
        f"clock (time_scale {SCENARIO.time_scale})",
    )
    end = SCENARIO.duration
    table.add_row(
        "final max skew",
        round(sim.max_skew(end), 4),
        round(live.max_skew(end), 4),
    )
    table.add_row("messages", len(sim.messages), len(live.messages))
    print(table.render())
    print("\nThe gap is OS scheduling noise; delays stay in the model band.")
    live.check_delay_bounds()
    live.check_validity()
    print("live run passes the model-compliance checks.")


if __name__ == "__main__":
    sim = simulator_baseline()
    virtual_twin(sim)
    asyncio_real_time(sim)
