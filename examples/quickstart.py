#!/usr/bin/env python
"""Quickstart: simulate clock sync, measure the gradient, force the bound.

Covers the three things the library does:

1. run a clock synchronization algorithm on a network with drifting
   clocks and adversarial-capable delays;
2. measure the *gradient*: max skew as a function of node distance;
3. unleash the paper's Theorem 8.1 adversary and watch it force skew
   between adjacent nodes.

Run:  python examples/quickstart.py
"""

from repro import (
    LowerBoundAdversary,
    MaxBasedAlgorithm,
    SimConfig,
    UniformRandomDelay,
    line,
    lower_bound_curve,
    run_simulation,
)
from repro.analysis import Table
from repro.experiments.common import drifted_rates


def benign_run() -> None:
    print("=== 1. a benign run: 13 drifting nodes on a line ===")
    topology = line(13)
    algorithm = MaxBasedAlgorithm(period=0.5)
    execution = run_simulation(
        topology,
        algorithm.processes(topology),
        SimConfig(duration=60.0, rho=0.2, seed=7),
        rate_schedules=drifted_rates(topology, rho=0.2, seed=7),
        delay_policy=UniformRandomDelay(),
    )
    execution.check_validity()   # Requirement 1 holds
    execution.check_delay_bounds()  # the model's [0, d] band holds

    table = Table(
        title="gradient profile (empirical f)",
        headers=["distance d", "max |L_i - L_j| observed"],
    )
    for d, skew in execution.gradient_profile().items():
        table.add_row(d, skew)
    print(table.render())
    print()


def forced_skew() -> None:
    print("=== 2. the Theorem 8.1 adversary, diameter 32 ===")
    adversary = LowerBoundAdversary(diameter=32, rho=0.5, shrink=4)
    result = adversary.run(MaxBasedAlgorithm())
    table = Table(
        title="per-round transcript",
        headers=["round", "pair", "span", "skew before", "skew after"],
    )
    for r in result.rounds:
        table.add_row(
            r.round_index, f"({r.i},{r.j})", r.span, r.skew_before, r.skew_after_round
        )
    print(table.render())
    print(
        f"\nforced distance-1 skew: {result.final_adjacent_skew:.3f} "
        f"(envelope log D/log log D = {lower_bound_curve(32):.3f})"
    )
    print("No algorithm can avoid this: clock sync is not a local property.")


if __name__ == "__main__":
    benign_run()
    forced_skew()
