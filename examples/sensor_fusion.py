#!/usr/bin/env python
"""Data fusion over a sensor tree (the paper's first motivating app).

A three-level sensor tree timestamps physical events with logical
clocks; parents fuse children's reports only when their timestamps agree
within a tolerance.  The example compares an unsynchronized network, the
max-based algorithm, and the gradient candidate, showing how sibling
(nearby-node) synchronization decides fusion quality — the paper's
locality argument in action.

Run:  python examples/sensor_fusion.py
"""

from repro import SimConfig, UniformRandomDelay, balanced_tree, run_simulation
from repro.algorithms import (
    BoundedCatchUpAlgorithm,
    MaxBasedAlgorithm,
    NullAlgorithm,
)
from repro.analysis import Table
from repro.apps.fusion import evaluate_fusion, fusion_groups
from repro.experiments.common import drifted_rates

RHO = 0.1
DURATION = 90.0


def main() -> None:
    topology = balanced_tree(3, 2)  # 13 sensors: root, 3 relays, 9 leaves
    groups = fusion_groups(topology, root=0)
    print(
        f"sensor tree: {topology.n} nodes, {len(groups)} fusion groups "
        f"(parents with >= 2 children)\n"
    )

    table = Table(
        title="mis-fusion rate by algorithm and tolerance",
        headers=["algorithm", "tol 0.25", "tol 0.5", "tol 1.0", "worst spread"],
        caption="fraction of (event, group) pairs whose sibling timestamps "
        "disagreed by more than the tolerance",
    )
    for algorithm in (
        NullAlgorithm(),
        MaxBasedAlgorithm(period=0.5),
        BoundedCatchUpAlgorithm(period=0.5, kappa=0.5, mu=0.5),
    ):
        execution = run_simulation(
            topology,
            algorithm.processes(topology),
            SimConfig(duration=DURATION, rho=RHO, seed=11),
            rate_schedules=drifted_rates(topology, rho=RHO, seed=11),
            delay_policy=UniformRandomDelay(),
        )
        execution.check_validity()
        rates = []
        worst = 0.0
        for tolerance in (0.25, 0.5, 1.0):
            report = evaluate_fusion(
                execution,
                tolerance=tolerance,
                n_events=60,
                warmup=DURATION * 0.2,
                seed=11,
            )
            rates.append(report.misfusion_rate)
            worst = max(worst, report.worst_spread)
        table.add_row(algorithm.name, *rates, worst)
    print(table.render())
    print(
        "\nTakeaway: siblings are *nearby* nodes — an algorithm with a "
        "good gradient at small distances fuses correctly even while "
        "far-apart subtrees disagree."
    )


if __name__ == "__main__":
    main()
