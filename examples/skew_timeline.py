#!/usr/bin/env python
"""Watch the adversary work: adjacent skew over time, as sparklines.

Runs the Theorem 8.1 construction, then renders (a) the watched pair's
skew trajectory and (b) the network-wide max adjacent skew across the
final execution — including every Add Skew window — as terminal
sparklines, and exports the series to CSV for offline plotting.

Run:  python examples/skew_timeline.py
"""

from pathlib import Path

from repro import MaxBasedAlgorithm
from repro.analysis import adjacent_skew_series, skew_series, sparkline, write_csv
from repro.gcs import LowerBoundAdversary

D = 32


def main() -> None:
    result = LowerBoundAdversary(diameter=D, rho=0.5, shrink=4).run(
        MaxBasedAlgorithm()
    )
    execution = result.final_execution
    i, j = result.final_pair

    times, adjacent = adjacent_skew_series(execution, step=1.0)
    _, pair = skew_series(execution, i, j, step=1.0)

    print(f"Theorem 8.1 against max-based, D = {D}, "
          f"{result.rounds_applied} rounds, duration {execution.duration:.1f}\n")
    print(f"max adjacent skew over time   (peak {max(adjacent):.3f})")
    print("  " + sparkline(adjacent))
    print(f"final pair ({i},{j}) |skew| over time   (end {pair[-1]:.3f})")
    print("  " + sparkline(pair))
    print()
    for r in result.rounds:
        print(
            f"  round {r.round_index}: Add Skew on ({r.i},{r.j}) "
            f"ends at t={r.duration_after:.1f}"
        )

    out = Path("skew_timeline.csv")
    write_csv(out, times, {"max_adjacent": adjacent, "final_pair": pair})
    print(f"\nseries written to {out} (plot offline if desired)")


if __name__ == "__main__":
    main()
