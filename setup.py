from pathlib import Path

from setuptools import find_packages, setup

README = Path(__file__).parent / "README.md"

setup(
    name="repro-gradient-clock-sync",
    version="1.7.0",
    description=(
        "Executable reproduction of 'Gradient Clock Synchronization' "
        "(Fan & Lynch, PODC 2004): simulator, lower-bound adversaries, "
        "experiments E01-E16, a parallel scenario-sweep engine, a "
        "dynamic-topology & mobility subsystem, a live runtime "
        "(virtual-time / asyncio / UDP transports), a batched "
        "simulation engine byte-identical to the scalar event loop, "
        "a stdlib-only SVG observability layer (dashboards, "
        "mobility animations, live streaming tails, sweep reports), "
        "repro-check, an AST-based invariant linter enforcing the "
        "determinism / float-discipline / layering / pickle-safety / "
        "registry-sync contracts statically, and repro-serve, a "
        "sweep-as-a-service daemon with a content-addressed result "
        "store, multi-client dedup, and crash-resumable sweeps"
    ),
    long_description=README.read_text() if README.exists() else "",
    long_description_content_type="text/markdown",
    author="paper-repo-growth",
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=[
        "numpy>=1.24",
        "networkx>=3.0",
    ],
    extras_require={
        "test": ["pytest>=7.0", "pytest-benchmark>=4.0", "hypothesis>=6.0"],
    },
    entry_points={
        "console_scripts": [
            "repro-experiments = repro.experiments.cli:main",
            "repro-live = repro.rt.cli:main",
            "repro-viz = repro.viz.cli:main",
            "repro-check = repro.check.cli:main",
            "repro-serve = repro.serve.cli:main",
        ],
    },
    classifiers=[
        "Development Status :: 4 - Beta",
        "Intended Audience :: Science/Research",
        "Programming Language :: Python :: 3",
        "Programming Language :: Python :: 3.10",
        "Programming Language :: Python :: 3.11",
        "Programming Language :: Python :: 3.12",
        "Topic :: Scientific/Engineering",
        "Topic :: System :: Distributed Computing",
    ],
    keywords="clock-synchronization distributed-systems simulation PODC",
)
